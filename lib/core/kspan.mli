(** kspan: request-scoped causal tracing.

    A span is one request's journey through a synthesized pipeline — a
    kpipe write burst, a disk transfer, a tty character, a kqueue
    item.  Spans are minted when the request enters the pipeline,
    carried across queue boundaries by a host-side side-table keyed by
    (queue descriptor, arrival index), and closed at completion.  Each
    hop attributes the cycles since the previous hop to a (stage,
    phase) pair and records them in per-stage histograms in the
    metrics registry ("kspan.<pipeline>.<stage>.<phase>_cycles",
    plus "kspan.<pipeline>.total_cycles" at close), so p50/p99/p999
    tail latency per pipeline stage falls out of any run.

    Overhead discipline matches ktrace: machine-visible span probes
    are instruction fragments spliced into synthesized code only when
    spans are enabled at synthesis time — disabled, the fragments are
    empty and the instruction stream is byte-identical, so spans-off
    runs are cycle-identical ([bench span-overhead] proves it).  All
    span bookkeeping is host-side and charges no simulated cycles.

    Sits below {!Kernel} (like {!Ktrace}); [Kernel.attach_spans] wires
    one in and call sites go through [Kernel.span_probe]. *)

open Quamachine

type t

(** Where a hop's cycles went. *)
type phase = Queue_wait | Service | Interrupt

val phase_name : phase -> string

(** Span events are emitted into [trace] (and its always-on black
    box) when given; histograms land in [metrics].  [enabled] is the
    synthesis-time switch for probes. *)
val create :
  ?enabled:bool -> ?trace:Ktrace.t -> metrics:Metrics.t -> Machine.t -> t

val enabled : t -> bool

(** Spans opened and not yet closed. *)
val open_count : t -> int

(** Open spans as (id, pipeline, detail, opened-at-cycles), oldest
    first — the postmortem's "what was in flight". *)
val open_spans : t -> (int * string * string * int) list

val pp_open : Format.formatter -> t -> unit

(** {1 Direct span lifecycle (host-side servers, e.g. disk)} *)

(** Mint a span: emits [Span_open], returns its id. *)
val open_span : t -> pipeline:string -> detail:string -> int

(** Attribute the cycles since the span's previous hop (or open) to
    [stage]/[phase]; emits [Span_hop].  Unknown ids are ignored (the
    side-table may have been reset under the caller). *)
val hop : t -> int -> stage:string -> phase:phase -> unit

(** Close: records "kspan.<pipeline>.total_cycles", emits
    [Span_close]. *)
val close : t -> int -> unit

(** Close a failed request; counts "kspan.failed" and tags the close
    event with [reason] instead of the pipeline name. *)
val fail : t -> int -> reason:string -> unit

(** {1 Queue carriage}

    The side-table: a FIFO of (span id, cumulative weight) per queue
    descriptor address.  Weights let byte-stream pipes match one
    drain against several bursts: a take closes every span whose
    cumulative enqueue weight the cumulative take weight has
    covered. *)

(** Stamp stage entry for [queue] (pipe write entry): the next
    [enqueue] counts service cycles from here. *)
val stage_enter : t -> queue:int -> unit

(** Open a span covering writer service since [stage_enter] (or the
    previous enqueue on this queue), record the service hop, and park
    it in the side-table with [weight] (words published). *)
val enqueue :
  t -> queue:int -> pipeline:string -> detail:string -> stage:string ->
  weight:int -> unit

(** Pop every span covered by [weight] more drained units: each gets
    a [stage]/[phase] hop (its queue residency) and closes. *)
val dequeue : t -> queue:int -> stage:string -> phase:phase -> weight:int -> unit

(** Unit-weight carriage for discrete queues: open-at-put (no service
    hop) / close-at-get. *)
val queue_put : t -> queue:int -> pipeline:string -> detail:string -> unit

val queue_take : t -> queue:int -> unit

(** Drop a queue's parked spans (pipe teardown/recycle); dropped spans
    close with reason ["reset"]. *)
val slot_reset : t -> queue:int -> unit

(** {1 Probes for synthesized code}

    [probe t f]: an instruction fragment running host closure [f]
    (which may read machine registers, e.g. the published word count)
    — [[]] when spans are disabled, a single [Hcall] (2 cycles) when
    enabled.  Splice at synthesis time only; compute the fragment
    outside [Template.make] so kheal resynthesis reproduces identical
    code. *)
val probe : t -> (Machine.t -> unit) -> Insn.insn list
