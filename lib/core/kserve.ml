(* kserve: a synthesized network serving stack.

   The server is a stream graph over the NIC: an rx pump lifts frames
   off the card's ring into a gauged request flow, a switch fans them
   out to worker threads by connection slot, each worker dispatches
   through a per-slot table of routines the accept path synthesized
   with Ksynth at open time (so warm accepts are cache hits), and a tx
   pump lays responses back on the card's tx ring.  Spans are minted
   at rx and closed at tx, so every request's pipeline latency lands
   in the "kspan.serve.total_cycles" histogram.

   Overload handling is a scheduling policy (§3): a host-side
   controller samples the flow gauges each epoch, retunes worker
   quanta against the backlog, and — past a high watermark — arms the
   NIC's admission limit so excess offered load is shed at the rx ring
   instead of queueing without bound. *)

open Quamachine
module I = Insn
module SG = Stream_graph

(* ------------------------------------------------------------------ *)
(* The wire protocol: one word per frame.                              *)
(* ------------------------------------------------------------------ *)

let id_shift = 18
let op_shift = 15
let arg_mask = 0x7FFF
let op_open = 1
let op_read = 2
let op_write = 3
let op_close = 4
let op_err = 7

(* id 16383 is reserved: with op_err and arg_mask it would collide
   with the stream layer's EOF sentinel. *)
let max_conn_id = 16382

let pack ~id ~op ~arg =
  if id < 0 || id > max_conn_id then invalid_arg "Kserve.pack: bad id";
  (id lsl id_shift) lor ((op land 7) lsl op_shift) lor (arg land arg_mask)

let msg_id w = (w lsr id_shift) land 0x3FFF
let msg_op w = (w lsr op_shift) land 7
let msg_arg w = w land arg_mask

(* Span side-table keys: in-flight opens are keyed by connection in a
   namespace disjoint from slot keys. *)
let open_span_key conn = (1 lsl 20) lor conn

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  cfg_workers : int;  (* power of two *)
  cfg_slots : int;  (* power of two; connection table size *)
  cfg_files : int;  (* power of two; files served *)
  cfg_file_words : int;
  cfg_ring_len : int;  (* power of two; NIC rx/tx ring entries *)
  cfg_queue_size : int;  (* flow capacity, items *)
  cfg_coalesce : int;  (* NIC completions per interrupt *)
  cfg_poll_us : float;  (* NIC service-tick period *)
  cfg_pump_quantum_us : int;
  cfg_worker_quantum_us : int;  (* base; the controller retunes *)
  cfg_worker_quantum_max_us : int;
  cfg_ctl_epoch_us : float;  (* overload-controller sampling period *)
  cfg_admit_hi : int;  (* backlog watermark that arms shedding *)
  cfg_admit_lo : int;  (* backlog watermark that disarms it *)
  cfg_admit_limit : int;  (* rx occupancy admitted while shedding *)
}

let default_config =
  {
    cfg_workers = 2;
    cfg_slots = 64;
    cfg_files = 8;
    cfg_file_words = 64;
    cfg_ring_len = 64;
    cfg_queue_size = 64;
    cfg_coalesce = 4;
    cfg_poll_us = 2.0;
    cfg_pump_quantum_us = 100;
    cfg_worker_quantum_us = 100;
    cfg_worker_quantum_max_us = 400;
    cfg_ctl_epoch_us = 200.0;
    cfg_admit_hi = 96;
    cfg_admit_lo = 32;
    cfg_admit_limit = 16;
  }

(* ------------------------------------------------------------------ *)
(* The per-connection service template (§2.2)                          *)
(* ------------------------------------------------------------------ *)

(* Synthesized at accept time with the file's buffer base, capacity
   and size cell, the connection's position cell, and the response
   constants folded in.  Called with the request in r1, returns the
   response in r1; r4..r8 are scratch (the worker preserves nothing
   across the call).  Reads are a circular stream over the file body;
   writes append and wrap (a ring file). *)
let service_template =
  Template.make ~name:"serve/conn"
    ~params:
      [
        "respc_read";
        "respc_write";
        "respc_close";
        "respc_err";
        "buf";
        "cap";
        "size_cell";
        "pos_cell";
        "close_hc";
      ]
    (fun p ->
      [
        I.Move (I.Reg I.r1, I.Reg I.r8);
        I.Move (I.Reg I.r1, I.Reg I.r4);
        I.Alu (I.Lsr, I.Imm op_shift, I.r4);
        I.Alu (I.And, I.Imm 7, I.r4);
        I.Cmp (I.Imm op_read, I.Reg I.r4);
        I.B (I.Eq, I.To_label "read");
        I.Cmp (I.Imm op_write, I.Reg I.r4);
        I.B (I.Eq, I.To_label "write");
        I.Cmp (I.Imm op_close, I.Reg I.r4);
        I.B (I.Eq, I.To_label "close");
        I.Move (I.Imm (p "respc_err"), I.Reg I.r1);
        I.Rts;
        (* read: value = body[pos], pos advances and wraps at size *)
        I.Label "read";
        I.Move (I.Abs (p "size_cell"), I.Reg I.r6);
        I.Cmp (I.Imm 0, I.Reg I.r6);
        I.B (I.Eq, I.To_label "rd_empty");
        I.Move (I.Abs (p "pos_cell"), I.Reg I.r5);
        I.Cmp (I.Reg I.r6, I.Reg I.r5);
        I.B (I.Cs, I.To_label "rd_ok"); (* pos < size *)
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "rd_ok";
        I.Move (I.Reg I.r5, I.Reg I.r7);
        I.Alu (I.Add, I.Imm (p "buf"), I.r7);
        I.Move (I.Ind I.r7, I.Reg I.r7);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Move (I.Reg I.r5, I.Abs (p "pos_cell"));
        I.Alu (I.And, I.Imm arg_mask, I.r7);
        I.Move (I.Imm (p "respc_read"), I.Reg I.r1);
        I.Alu (I.Or, I.Reg I.r7, I.r1);
        I.Rts;
        I.Label "rd_empty";
        I.Move (I.Imm (p "respc_read"), I.Reg I.r1);
        I.Rts;
        (* write: body[size] = arg, size advances and wraps at cap *)
        I.Label "write";
        I.Move (I.Reg I.r8, I.Reg I.r7);
        I.Alu (I.And, I.Imm arg_mask, I.r7);
        I.Move (I.Abs (p "size_cell"), I.Reg I.r5);
        I.Cmp (I.Imm (p "cap"), I.Reg I.r5);
        I.B (I.Cs, I.To_label "wr_ok"); (* size < cap *)
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "wr_ok";
        I.Move (I.Reg I.r5, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Reg I.r7, I.Ind I.r6);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Move (I.Reg I.r5, I.Abs (p "size_cell"));
        I.Move (I.Imm (p "respc_write"), I.Reg I.r1);
        I.Alu (I.Or, I.Reg I.r7, I.r1);
        I.Rts;
        (* close: tell the host, acknowledge *)
        I.Label "close";
        I.Hcall (p "close_hc");
        I.Move (I.Imm (p "respc_close"), I.Reg I.r1);
        I.Rts;
      ])

(* The shared routine free dispatch slots point at: answer anything
   with op_err, echoing the slot bits. *)
let stub_insns =
  [
    I.Alu (I.And, I.Imm 0xFFFC_0000, I.r1);
    I.Alu (I.Or, I.Imm (op_err lsl op_shift), I.r1);
    I.Rts;
  ]

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type slot_state = { sl_conn : int; sl_file : int; sl_handle : Ksynth.handle }

type stats = {
  n_accepts : int;
  n_closes : int;
  n_refused : int;  (* opens refused for want of a slot *)
  n_dup_opens : int;
  n_hits : int;  (* accepts served from the synthesis cache *)
  n_misses : int;
  n_retunes : int;  (* controller quantum adjustments *)
  n_responses : int;  (* responses laid on the tx ring *)
  n_shed : int;  (* frames shed at the rx ring while overloaded *)
}

type t = {
  sv_boot : Boot.t;
  sv_k : Kernel.t;
  sv_cfg : config;
  sv_nic : Devices.Nic.t;
  sv_files : Fs.file array;
  sv_tbl : int;  (* per-slot dispatch table (code addresses in data) *)
  sv_stub : int;
  sv_pos_base : int;  (* per-slot stream position cells *)
  sv_stop_cell : int;
  sv_done_cell : int;
  sv_rx_tail_cell : int;
  sv_req : SG.flow;
  sv_work : SG.flow array;  (* = [| sv_req |] when cfg_workers = 1 *)
  sv_resp : SG.flow;
  sv_rx_gauge : SG.gauge;
  sv_tx_gauge : SG.gauge;
  sv_worker_gauges : SG.gauge array;
  sv_slots : slot_state option array;
  mutable sv_free : int list;  (* never-used slots *)
  sv_retired : int list array;  (* freed slots, per last-served file *)
  sv_conn_of : (int, int) Hashtbl.t;
  sv_spans : (int, int Queue.t) Hashtbl.t;  (* span ids in flight *)
  sv_segments : (int * int) list;
  mutable sv_entries : (string * int * int option * int) list;
      (* (name, entry, cpu, quantum) per stage program, spawn order *)
  mutable sv_threads : Kernel.tte list;
  mutable sv_worker_ttes : Kernel.tte list;
  mutable sv_accept_hc : int;
  mutable sv_close_hc : int;
  mutable sv_shedding : bool;
  mutable sv_accepts : int;
  mutable sv_closes : int;
  mutable sv_refused : int;
  mutable sv_dup_opens : int;
  mutable sv_hits : int;
  mutable sv_misses : int;
  mutable sv_retunes : int;
}

let pow2 n = n > 0 && n land (n - 1) = 0

(* span bookkeeping (host side, no simulated cycles) *)
let span_push t key sid =
  let q =
    match Hashtbl.find_opt t.sv_spans key with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.sv_spans key q;
      q
  in
  Queue.push sid q

let span_pop t key =
  match Hashtbl.find_opt t.sv_spans key with
  | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
  | _ -> None

(* move one pending-open span from the conn key to the slot key *)
let span_rekey t ~conn ~slot =
  match span_pop t (open_span_key conn) with
  | Some sid -> span_push t slot sid
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Accept and close (the hcall side of the server)                     *)
(* ------------------------------------------------------------------ *)

(* Accept: resolve the file through the vfs name space, synthesize (or
   cache-hit) the per-connection service routine, wire it into the
   dispatch table, and answer with the assigned slot.  The response's
   arg echoes the connection id so the client can match it. *)
let do_accept t ~conn ~farg =
  let k = t.sv_k in
  let conn = conn land 0x3FFF in
  let echo = conn land arg_mask in
  match Hashtbl.find_opt t.sv_conn_of conn with
  | Some slot ->
    t.sv_dup_opens <- t.sv_dup_opens + 1;
    span_rekey t ~conn ~slot;
    pack ~id:slot ~op:op_open ~arg:echo
  | None -> (
    let fidx = farg land (Array.length t.sv_files - 1) in
    (* slot recycling is file-affine: a slot that last served this
       file yields byte-identical invariants, so the instantiate below
       is a cache hit (the paper's recycled-cells discipline) *)
    let take_slot () =
      match t.sv_retired.(fidx) with
      | slot :: rest ->
        t.sv_retired.(fidx) <- rest;
        Some slot
      | [] -> (
        match t.sv_free with
        | slot :: rest ->
          t.sv_free <- rest;
          Some slot
        | [] ->
          (* steal a retired slot from another file *)
          let stolen = ref None in
          Array.iteri
            (fun f -> function
              | slot :: rest when !stolen = None ->
                t.sv_retired.(f) <- rest;
                stolen := Some slot
              | _ -> ())
            t.sv_retired;
          !stolen)
    in
    match take_slot () with
    | None ->
      t.sv_refused <- t.sv_refused + 1;
      Kernel.span k (fun sp ->
          match span_pop t (open_span_key conn) with
          | Some sid -> Kspan.fail sp sid ~reason:"refused"
          | None -> ());
      pack ~id:0 ~op:op_err ~arg:echo
    | Some slot ->
      let file = t.sv_files.(fidx) in
      (* name-space resolution: the accept path goes through the vfs *)
      (match Vfs.lookup t.sv_boot.Boot.vfs file.Fs.f_name with
      | Some _ -> ()
      | None -> invalid_arg "Kserve: served file left the name space");
      let pos_cell = t.sv_pos_base + slot in
      let before = (Ksynth.stats k).Ksynth.st_hits in
      let h =
        Ksynth.instantiate k ~name:"serve/conn" ~kind:"serve"
          ~template:service_template
          ~invariants:
            [
              ("respc_read", pack ~id:slot ~op:op_read ~arg:0);
              ("respc_write", pack ~id:slot ~op:op_write ~arg:0);
              ("respc_close", pack ~id:slot ~op:op_close ~arg:0);
              ("respc_err", pack ~id:slot ~op:op_err ~arg:0);
              ("buf", file.Fs.f_buf);
              ("cap", file.Fs.f_cap);
              ("size_cell", file.Fs.f_size_cell);
              ("pos_cell", pos_cell);
              ("close_hc", t.sv_close_hc);
            ]
      in
      if (Ksynth.stats k).Ksynth.st_hits > before then
        t.sv_hits <- t.sv_hits + 1
      else t.sv_misses <- t.sv_misses + 1;
      let m = k.Kernel.machine in
      Machine.poke m pos_cell 0;
      Machine.poke m (t.sv_tbl + slot) (Ksynth.entry h);
      t.sv_slots.(slot) <- Some { sl_conn = conn; sl_file = fidx; sl_handle = h };
      Hashtbl.replace t.sv_conn_of conn slot;
      t.sv_accepts <- t.sv_accepts + 1;
      span_rekey t ~conn ~slot;
      pack ~id:slot ~op:op_open ~arg:echo)

(* Close: release the handle (the page stays warm in the cache for
   the next accept), repoint the dispatch slot at the stub, recycle
   the slot. *)
let do_close t ~slot =
  if slot >= 0 && slot < Array.length t.sv_slots then
    match t.sv_slots.(slot) with
    | None -> ()
    | Some s ->
      Hashtbl.remove t.sv_conn_of s.sl_conn;
      Ksynth.release t.sv_k s.sl_handle;
      Machine.poke t.sv_k.Kernel.machine (t.sv_tbl + slot) t.sv_stub;
      t.sv_slots.(slot) <- None;
      t.sv_retired.(s.sl_file) <- slot :: t.sv_retired.(s.sl_file);
      t.sv_closes <- t.sv_closes + 1

let host_accept t ~conn ~file = do_accept t ~conn ~farg:file
let host_close t ~slot = do_close t ~slot

(* ------------------------------------------------------------------ *)
(* Stage programs                                                      *)
(* ------------------------------------------------------------------ *)

(* rx pump (user mode — the NIC's mailbox cells stand in for the
   supervisor-only MMIO window): poll the head-writeback cell against
   our tail cell; for each filled descriptor, mint a span, push the
   request word into the request flow, retire the descriptor and
   publish the new tail.  While the flow is full the put spins
   *without* retiring, so the rx ring fills and the NIC sheds —
   backpressure reaches the wire. *)
let rx_program t ~rx_ring ~ring_len ~rx_mail =
  let k = t.sv_k in
  let open_probe =
    Kernel.span_probe k (fun sp m ->
        let w = Machine.get_reg m I.r1 in
        let key =
          if msg_op w = op_open then open_span_key (msg_id w) else msg_id w
        in
        let sid = Kspan.open_span sp ~pipeline:"serve" ~detail:"req" in
        span_push t key sid)
  in
  let ticks = SG.gauge_tick t.sv_req.SG.fl_gauge @ SG.gauge_tick t.sv_rx_gauge in
  [
    I.Label "loop";
    I.Move (I.Abs t.sv_stop_cell, I.Reg I.r8);
    I.Tst (I.Reg I.r8);
    I.B (I.Ne, I.To_label "stop");
    I.Move (I.Abs rx_mail, I.Reg I.r8);
    I.Move (I.Abs t.sv_rx_tail_cell, I.Reg I.r9);
    I.Cmp (I.Reg I.r8, I.Reg I.r9);
    I.B (I.Ne, I.To_label "have");
    I.Trap 5; (* ring empty: yield *)
    I.B (I.Always, I.To_label "loop");
    I.Label "have";
    I.Move (I.Reg I.r9, I.Reg I.r10);
    I.Alu (I.And, I.Imm (ring_len - 1), I.r10);
    I.Alu (I.Lsl, I.Imm 2, I.r10); (* * desc_words *)
    I.Alu (I.Add, I.Imm rx_ring, I.r10);
    I.Move (I.Ind I.r10, I.Reg I.r11); (* descriptor buffer *)
    I.Move (I.Ind I.r11, I.Reg I.r1); (* the request word *)
  ]
  @ open_probe
  @ SG.retry_put ~label:"put" ~put:t.sv_req.SG.fl_q.Kqueue.q_put
  @ [
      I.Move (I.Imm 0, I.Idx (I.r10, 2)); (* descriptor consumed *)
      I.Alu (I.Add, I.Imm 1, I.r9);
      I.Move (I.Reg I.r9, I.Abs t.sv_rx_tail_cell);
    ]
  @ ticks
  @ [ I.B (I.Always, I.To_label "loop"); I.Label "stop" ]
  @ [ I.Move (I.Imm SG.eof_word, I.Reg I.r1) ]
  @ SG.retry_put ~label:"eofput" ~put:t.sv_req.SG.fl_q.Kqueue.q_put
  @ [ I.Trap 0 ]

(* worker: take a request, dispatch — opens go to the accept hcall,
   everything else jumps through the dispatch table entry the accept
   path synthesized for that slot — and push the response. *)
let worker_program t ~w =
  let work = t.sv_work.(w) in
  let nslots = Array.length t.sv_slots in
  let ticks =
    SG.gauge_tick t.sv_resp.SG.fl_gauge @ SG.gauge_tick t.sv_worker_gauges.(w)
  in
  [ I.Label "loop" ]
  @ SG.retry_get ~label:"get" ~get:work.SG.fl_q.Kqueue.q_get
  @ [
      I.Cmp (I.Imm SG.eof_word, I.Reg I.r1);
      I.B (I.Eq, I.To_label "eof");
      I.Move (I.Reg I.r1, I.Reg I.r8);
      I.Alu (I.Lsr, I.Imm op_shift, I.r8);
      I.Alu (I.And, I.Imm 7, I.r8);
      I.Cmp (I.Imm op_open, I.Reg I.r8);
      I.B (I.Eq, I.To_label "accept");
      I.Move (I.Reg I.r1, I.Reg I.r8);
      I.Alu (I.Lsr, I.Imm id_shift, I.r8);
      I.Cmp (I.Imm nslots, I.Reg I.r8);
      I.B (I.Cc, I.To_label "badslot"); (* slot >= nslots *)
      I.Alu (I.Add, I.Imm t.sv_tbl, I.r8);
      I.Jsr (I.To_mem (I.Ind I.r8)); (* the synthesized service *)
      I.Label "respond";
    ]
  @ SG.retry_put ~label:"put" ~put:t.sv_resp.SG.fl_q.Kqueue.q_put
  @ ticks
  @ [
      I.B (I.Always, I.To_label "loop");
      I.Label "accept";
      I.Hcall t.sv_accept_hc;
      I.B (I.Always, I.To_label "respond");
      I.Label "badslot";
      I.Jsr (I.To_addr t.sv_stub);
      I.B (I.Always, I.To_label "respond");
      I.Label "eof";
    ]
  @ SG.retry_put ~label:"eofput" ~put:t.sv_resp.SG.fl_q.Kqueue.q_put
  @ [ I.Trap 0 ]

(* tx pump: take responses, wait for tx-ring space against the NIC's
   tail-writeback cell, store the frame, ring the doorbell cell, and
   close the span.  Exits (and raises the done flag) after an EOF from
   every worker. *)
let tx_program t ~tx_ring ~ring_len ~tx_mail ~tx_head_cell =
  let k = t.sv_k in
  let nworkers = Array.length t.sv_work in
  let close_probe =
    Kernel.span_probe k (fun sp m ->
        let w = Machine.get_reg m I.r1 in
        match span_pop t (msg_id w) with
        | Some sid -> Kspan.close sp sid
        | None -> ())
  in
  [ I.Label "loop" ]
  @ SG.retry_get ~label:"get" ~get:t.sv_resp.SG.fl_q.Kqueue.q_get
  @ [
      I.Cmp (I.Imm SG.eof_word, I.Reg I.r1);
      I.B (I.Eq, I.To_label "eof");
      I.Label "space";
      I.Move (I.Abs tx_head_cell, I.Reg I.r8);
      I.Move (I.Abs tx_mail, I.Reg I.r9);
      I.Move (I.Reg I.r8, I.Reg I.r10);
      I.Alu (I.Sub, I.Reg I.r9, I.r10); (* occupancy *)
      I.Cmp (I.Imm ring_len, I.Reg I.r10);
      I.B (I.Cs, I.To_label "ok"); (* occupancy < ring_len *)
      I.Trap 5; (* ring full: yield until the card drains *)
      I.B (I.Always, I.To_label "space");
      I.Label "ok";
      I.Move (I.Reg I.r8, I.Reg I.r10);
      I.Alu (I.And, I.Imm (ring_len - 1), I.r10);
      I.Alu (I.Lsl, I.Imm 2, I.r10);
      I.Alu (I.Add, I.Imm tx_ring, I.r10);
      I.Move (I.Ind I.r10, I.Reg I.r11);
      I.Move (I.Reg I.r1, I.Ind I.r11); (* the response word *)
    ]
  @ close_probe
  @ [
      I.Alu (I.Add, I.Imm 1, I.r8);
      I.Move (I.Reg I.r8, I.Abs tx_head_cell); (* doorbell *)
    ]
  @ SG.gauge_tick t.sv_tx_gauge
  @ [
      I.B (I.Always, I.To_label "loop");
      I.Label "eof";
      I.Alu (I.Add, I.Imm 1, I.r12); (* r12 starts 0 in a fresh TTE *)
      I.Cmp (I.Imm nworkers, I.Reg I.r12);
      I.B (I.Cs, I.To_label "loop"); (* more workers still draining *)
      I.Move (I.Imm 1, I.Abs t.sv_done_cell);
      I.Trap 0;
    ]

(* ------------------------------------------------------------------ *)
(* The overload controller (§3: scheduling policy, not a mechanism)    *)
(* ------------------------------------------------------------------ *)

let backlog t =
  let k = t.sv_k in
  let flows =
    if Array.length t.sv_work = 1 then [ t.sv_req; t.sv_resp ]
    else t.sv_req :: t.sv_resp :: Array.to_list t.sv_work
  in
  List.fold_left (fun acc fl -> acc + SG.flow_length k fl) 0 flows

let rx_ring_occupancy t =
  let head = Devices.Nic.rx_head t.sv_nic in
  let tail = Machine.peek t.sv_k.Kernel.machine t.sv_rx_tail_cell in
  (head - tail) land Word.mask

let shedding t = t.sv_shedding

let install_controller t =
  let k = t.sv_k in
  let m = k.Kernel.machine in
  let cfg = t.sv_cfg in
  let epoch = Cost.cycles_of_us (Machine.cost_model m) cfg.cfg_ctl_epoch_us in
  let arrival_g = Metrics.gauge k.Kernel.metrics "serve.arrival_rate" in
  let service_g = Metrics.gauge k.Kernel.metrics "serve.service_rate" in
  let backlog_g = Metrics.gauge k.Kernel.metrics "serve.backlog" in
  let dev = ref None in
  let tick m' =
    let arrival = SG.gauge_sample k t.sv_rx_gauge in
    let service =
      Array.fold_left (fun acc g -> acc +. SG.gauge_sample k g) 0.0
        t.sv_worker_gauges
    in
    let pressure = backlog t + rx_ring_occupancy t in
    Metrics.set_gauge arrival_g arrival;
    Metrics.set_gauge service_g service;
    Metrics.set_gauge backlog_g (float_of_int pressure);
    (* admission control: shed at the NIC ring past the high
       watermark, readmit below the low one *)
    if (not t.sv_shedding) && pressure >= cfg.cfg_admit_hi then begin
      Devices.Nic.host_set_admit t.sv_nic cfg.cfg_admit_limit;
      t.sv_shedding <- true;
      Metrics.bump k.Kernel.metrics "serve.shed_on"
    end
    else if t.sv_shedding && pressure <= cfg.cfg_admit_lo then begin
      Devices.Nic.host_set_admit t.sv_nic 0;
      t.sv_shedding <- false
    end;
    (* quantum retune: longer worker quanta as the backlog deepens
       (fewer context switches, more service throughput) *)
    let span = cfg.cfg_worker_quantum_max_us - cfg.cfg_worker_quantum_us in
    let frac =
      min 1.0 (float_of_int pressure /. float_of_int cfg.cfg_admit_hi)
    in
    let q = cfg.cfg_worker_quantum_us + int_of_float (frac *. float_of_int span) in
    List.iter
      (fun tte ->
        if tte.Kernel.state <> Kernel.Zombie && tte.Kernel.quantum_us <> q then begin
          Ctx.set_quantum k tte q;
          Kernel.trace k (Ktrace.Retune (tte.Kernel.tid, q));
          t.sv_retunes <- t.sv_retunes + 1
        end)
      t.sv_worker_ttes;
    match !dev with
    | Some d -> Machine.device_schedule m' d (Machine.cycles m' + epoch)
    | None -> ()
  in
  let d =
    Machine.add_device m ~name:"serve-ctl" ~due:(Machine.cycles m + epoch) ~tick
  in
  dev := Some d

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let spawn_threads t =
  let k = t.sv_k in
  t.sv_worker_ttes <- [];
  t.sv_threads <-
    List.map
      (fun (name, entry, cpu, quantum_us) ->
        let tte =
          Thread.create k ?cpu ~quantum_us ~segments:t.sv_segments ~entry ()
        in
        Thread.start k tte;
        if String.length name >= 6 && String.sub name 0 6 = "worker" then
          t.sv_worker_ttes <- tte :: t.sv_worker_ttes;
        tte)
      t.sv_entries

let create ?(config = default_config) boot =
  let cfg = config in
  if not (pow2 cfg.cfg_workers) then invalid_arg "Kserve: workers must be 2^k";
  if not (pow2 cfg.cfg_slots && cfg.cfg_slots <= 4096) then
    invalid_arg "Kserve: slots must be 2^k <= 4096";
  if not (pow2 cfg.cfg_files) then invalid_arg "Kserve: files must be 2^k";
  if not (pow2 cfg.cfg_ring_len) then invalid_arg "Kserve: ring_len must be 2^k";
  let k = boot.Boot.kernel in
  let m = k.Kernel.machine in
  let alloc = k.Kernel.alloc in
  let ncores = Machine.num_cores m in
  let nic = Devices.Nic.install ~poll_us:cfg.cfg_poll_us m in
  (* the served files, registered in the vfs name space *)
  let files =
    Array.init cfg.cfg_files (fun i ->
        let content =
          Array.init cfg.cfg_file_words (fun j ->
              ((i * 31) + (j * 7) + 1) land arg_mask)
        in
        Fs.create_file boot.Boot.vfs
          ~name:(Printf.sprintf "/srv/%d" i)
          ~capacity:cfg.cfg_file_words ~content ())
  in
  (* control cells: stop, done, rx mail, rx tail, tx mail, tx head *)
  let cells = Kalloc.alloc_zeroed alloc 6 in
  let stop_cell = cells and done_cell = cells + 1 in
  let rx_mail = cells + 2 and rx_tail_cell = cells + 3 in
  let tx_mail = cells + 4 and tx_head_cell = cells + 5 in
  (* descriptor rings and single-word frame buffers *)
  let ring_len = cfg.cfg_ring_len in
  let rx_ring = Kalloc.alloc_zeroed alloc (Devices.Nic.desc_words * ring_len) in
  let tx_ring = Kalloc.alloc_zeroed alloc (Devices.Nic.desc_words * ring_len) in
  let rx_bufs = Kalloc.alloc_zeroed alloc ring_len in
  let tx_bufs = Kalloc.alloc_zeroed alloc ring_len in
  for i = 0 to ring_len - 1 do
    let rd = rx_ring + (Devices.Nic.desc_words * i) in
    Machine.poke m rd (rx_bufs + i);
    Machine.poke m (rd + 1) 1;
    let td = tx_ring + (Devices.Nic.desc_words * i) in
    Machine.poke m td (tx_bufs + i);
    Machine.poke m (td + 1) 1
  done;
  (* dispatch table and per-slot position cells *)
  let tbl = Kalloc.alloc_zeroed alloc cfg.cfg_slots in
  let pos_base = Kalloc.alloc_zeroed alloc cfg.cfg_slots in
  let stub, _ = Ksynth.install k ~name:"serve/badslot" stub_insns in
  for s = 0 to cfg.cfg_slots - 1 do
    Machine.poke m (tbl + s) stub
  done;
  (* flows *)
  let nw = cfg.cfg_workers in
  let qsize = cfg.cfg_queue_size in
  let req = SG.flow k ~name:"serve.req" ~size:qsize in
  let work =
    if nw = 1 then [| req |]
    else
      Array.init nw (fun w ->
          SG.flow k ~name:(Printf.sprintf "serve.work%d" w) ~size:qsize)
  in
  let resp = SG.flow ~producers:nw k ~name:"serve.resp" ~size:qsize in
  let rx_gauge = SG.gauge k ~name:"serve.rx" in
  let tx_gauge = SG.gauge k ~name:"serve.tx" in
  let worker_gauges =
    Array.init nw (fun w -> SG.gauge k ~name:(Printf.sprintf "serve.w%d" w))
  in
  (* segments: everything any stage touches *)
  let segments =
    List.concat_map SG.flow_segments
      (if nw = 1 then [ req; resp ] else (req :: resp :: Array.to_list work))
    @ [
        (cells, 6);
        (rx_ring, Devices.Nic.desc_words * ring_len);
        (tx_ring, Devices.Nic.desc_words * ring_len);
        (rx_bufs, ring_len);
        (tx_bufs, ring_len);
        (tbl, cfg.cfg_slots);
        (pos_base, cfg.cfg_slots);
        (rx_gauge.SG.g_cell, 1);
        (tx_gauge.SG.g_cell, 1);
      ]
    @ (Array.to_list worker_gauges
      |> List.map (fun g -> (g.SG.g_cell, 1)))
    @ (Array.to_list files
      |> List.concat_map (fun f ->
             [ (f.Fs.f_buf, f.Fs.f_cap); (f.Fs.f_size_cell, 1) ]))
  in
  let t =
    {
      sv_boot = boot;
      sv_k = k;
      sv_cfg = cfg;
      sv_nic = nic;
      sv_files = files;
      sv_tbl = tbl;
      sv_stub = stub;
      sv_pos_base = pos_base;
      sv_stop_cell = stop_cell;
      sv_done_cell = done_cell;
      sv_rx_tail_cell = rx_tail_cell;
      sv_req = req;
      sv_work = work;
      sv_resp = resp;
      sv_rx_gauge = rx_gauge;
      sv_tx_gauge = tx_gauge;
      sv_worker_gauges = worker_gauges;
      sv_slots = Array.make cfg.cfg_slots None;
      sv_free = List.init cfg.cfg_slots (fun s -> s);
      sv_retired = Array.make cfg.cfg_files [];
      sv_conn_of = Hashtbl.create 64;
      sv_spans = Hashtbl.create 64;
      sv_segments = segments;
      sv_entries = [];
      sv_threads = [];
      sv_worker_ttes = [];
      sv_accept_hc = 0;
      sv_close_hc = 0;
      sv_shedding = false;
      sv_accepts = 0;
      sv_closes = 0;
      sv_refused = 0;
      sv_dup_opens = 0;
      sv_hits = 0;
      sv_misses = 0;
      sv_retunes = 0;
    }
  in
  (* host service routines *)
  t.sv_accept_hc <-
    Machine.register_hcall m (fun m' ->
        Machine.charge m' 40;
        let req_w = Machine.get_reg m' I.r1 in
        let resp = do_accept t ~conn:(msg_id req_w) ~farg:(msg_arg req_w) in
        Machine.set_reg m' I.r1 resp);
  t.sv_close_hc <-
    Machine.register_hcall m (fun m' ->
        Machine.charge m' 20;
        do_close t ~slot:(msg_id (Machine.get_reg m' I.r1)));
  (* the card *)
  Devices.Nic.host_config_rx nic ~ring:rx_ring ~len:ring_len ~mail:rx_mail
    ~tail_cell:rx_tail_cell;
  Devices.Nic.host_config_tx nic ~ring:tx_ring ~len:ring_len ~mail:tx_mail
    ~head_cell:tx_head_cell;
  Devices.Nic.host_set_coalesce nic cfg.cfg_coalesce;
  Devices.Nic.host_enable nic true;
  (* stage programs, assembled once; threads are respawned from the
     recorded entries, so a rearmed run reuses all code and state *)
  let pq = cfg.cfg_pump_quantum_us and wq = cfg.cfg_worker_quantum_us in
  let cpu_of i = if ncores = 1 then None else Some (i mod ncores) in
  let entries = ref [] in
  let add name program cpu quantum =
    let entry, _ = Asm.assemble m program in
    entries := (name, entry, cpu, quantum) :: !entries
  in
  add "rx" (rx_program t ~rx_ring ~ring_len ~rx_mail) (cpu_of 0) pq;
  if nw > 1 then
    add "switch"
      (SG.switch_program ~from_:req ~outs:work ~shift:id_shift ())
      (cpu_of 0) pq;
  Array.iteri
    (fun w _ -> add (Printf.sprintf "worker%d" w) (worker_program t ~w)
        (cpu_of (1 + w)) wq)
    work;
  add "tx" (tx_program t ~tx_ring ~ring_len ~tx_mail ~tx_head_cell)
    (cpu_of (ncores - 1)) pq;
  t.sv_entries <- List.rev !entries;
  install_controller t;
  spawn_threads t;
  t

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let shutdown t = Machine.poke t.sv_k.Kernel.machine t.sv_stop_cell 1
let drained t = Machine.peek t.sv_k.Kernel.machine t.sv_done_cell <> 0

(* Rearm after a drained run: clear the flags and respawn the stage
   threads on their recorded entry points.  Queues, rings, dispatch
   table, and the synthesis cache all carry over — a warm restart's
   accepts are cache hits and the code footprint stays flat. *)
let restart t =
  let m = t.sv_k.Kernel.machine in
  Machine.poke m t.sv_stop_cell 0;
  Machine.poke m t.sv_done_cell 0;
  spawn_threads t

let stats t =
  let ns = Devices.Nic.stats t.sv_nic in
  {
    n_accepts = t.sv_accepts;
    n_closes = t.sv_closes;
    n_refused = t.sv_refused;
    n_dup_opens = t.sv_dup_opens;
    n_hits = t.sv_hits;
    n_misses = t.sv_misses;
    n_retunes = t.sv_retunes;
    n_responses = SG.gauge_count t.sv_k t.sv_tx_gauge;
    n_shed = ns.Devices.Nic.s_rx_shed;
  }

let nic t = t.sv_nic
let kernel t = t.sv_k
let config t = t.sv_cfg
let open_slots t =
  Array.length t.sv_slots - List.length t.sv_free
  - Array.fold_left (fun acc l -> acc + List.length l) 0 t.sv_retired
let threads t = t.sv_threads
let worker_ttes t = t.sv_worker_ttes
