(** kperf profiler: flat and per-owner profiles of the synthesized
    kernel, built from the PMU's pc samples and ktrace's exact cycle
    attribution.

    The per-owner view is exact — owner totals (plus a "(boot,
    pre-attach)" line for cycles spent before tracing attached) sum to
    the machine's cycle total to the cycle, so the reported
    percentages partition 100%.  The flat view is sampled: per-address
    weights labelled with the owning synthesized routine. *)

type line = { l_name : string; l_cycles : int; l_share : float }

type t = {
  p_total : int;  (** machine cycle total; owner lines sum to it *)
  p_owners : line list;  (** exact attribution, biggest first *)
  p_flat : (int * string * int) list;
      (** hottest sampled addresses: (addr, owning routine, weight) *)
  p_sample_count : int;
  p_sampled_cycles : int;
  p_period : int;  (** 0 when sampling was off *)
  p_synth : Ksynth.stats;  (** synthesis-cache counters for the run *)
  p_hist : (string * Histogram.t) list;
      (** kspan latency histograms from the metrics registry *)
}

(** Snapshot the profile of a kernel run.  Per-owner exactness needs
    tracing attached ({!Kernel.attach_tracing}); without it the whole
    total lands on one "(unattributed)" line.  [top] bounds the flat
    list. *)
val collect : ?top:int -> Kernel.t -> Quamachine.Pmu.t -> t

(** Sum of the owner lines — equals [p_total] whenever attribution was
    attached; {!balanced} checks it. *)
val owners_total : t -> int

val balanced : t -> bool
val pp : ?top:int -> Format.formatter -> t -> unit
val to_json : t -> string
