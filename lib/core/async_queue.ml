(* Asynchronous queues (§2.3): "we have the usual two kinds of queues,
   the synchronous queue which blocks at queue full or queue empty,
   and the asynchronous queue which signals at those conditions."

   An asynchronous queue never blocks: put and get return a status,
   and the interesting *edges* raise signals — a put into an empty
   queue signals the registered consumer ("data available"), a get
   from a full queue signals the registered producer ("space
   available").  The wrappers are synthesized around the underlying
   optimistic queue's code with the descriptor addresses folded in. *)

open Quamachine
module I = Insn

type t = {
  aq_queue : Kqueue.t;
  mutable aq_put : int; (* code entries of the signalling wrappers *)
  mutable aq_get : int;
  mutable aq_consumer : Kernel.tte option;
  mutable aq_producer : Kernel.tte option;
}

let set_consumer t tte = t.aq_consumer <- Some tte
let set_producer t tte = t.aq_producer <- Some tte

(* put wrapper: record whether the queue was empty, insert, and on an
   empty->nonempty transition signal the consumer. *)
let put_template ~q ~signal_consumer =
  Template.make ~name:"aq_put" ~params:[] (fun _ ->
      [
        I.Move (I.Abs (Kqueue.head_cell q), I.Reg I.r7);
        I.Cmp (I.Abs (Kqueue.tail_cell q), I.Reg I.r7);
        I.B (I.Ne, I.To_label "had_data");
        I.Move (I.Imm 1, I.Reg I.r7); (* was empty *)
        I.B (I.Always, I.To_label "go");
        I.Label "had_data";
        I.Move (I.Imm 0, I.Reg I.r7);
        I.Label "go";
        I.Jsr (I.To_addr q.Kqueue.q_put);
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "out"); (* full: status 0, no blocking *)
        I.Tst (I.Reg I.r7);
        I.B (I.Eq, I.To_label "out");
        I.Hcall signal_consumer; (* data-available edge *)
        I.Label "out";
        I.Rts;
      ])

(* get wrapper: record whether the queue was full, remove, and on a
   full->not-full transition signal the producer. *)
let get_template ~q ~signal_producer =
  Template.make ~name:"aq_get" ~params:[] (fun _ ->
      [
        (* full iff next(head) = tail *)
        I.Move (I.Abs (Kqueue.head_cell q), I.Reg I.r7);
        I.Alu (I.Add, I.Imm 1, I.r7);
        I.Cmp (I.Imm q.Kqueue.q_size, I.Reg I.r7);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r7);
        I.Label "nowrap";
        I.Cmp (I.Abs (Kqueue.tail_cell q), I.Reg I.r7);
        I.B (I.Eq, I.To_label "was_full");
        I.Move (I.Imm 0, I.Reg I.r7);
        I.B (I.Always, I.To_label "go");
        I.Label "was_full";
        I.Move (I.Imm 1, I.Reg I.r7);
        I.Label "go";
        I.Jsr (I.To_addr q.Kqueue.q_get);
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "out"); (* empty: status 0 *)
        I.Tst (I.Reg I.r7);
        I.B (I.Eq, I.To_label "out");
        I.Hcall signal_producer; (* space-available edge *)
        I.Label "out";
        I.Rts;
      ])

let create k ~name ~size =
  let q = Kqueue.create ~kind:Kqueue.Spsc k ~name:(name ^ "/under") ~size in
  let t = { aq_queue = q; aq_put = 0; aq_get = 0; aq_consumer = None; aq_producer = None } in
  let m = k.Kernel.machine in
  let signal_consumer =
    Machine.register_hcall m (fun _ ->
        match t.aq_consumer with
        | Some tte -> ignore (Thread.deliver_signal k tte)
        | None -> ())
  in
  let signal_producer =
    Machine.register_hcall m (fun _ ->
        match t.aq_producer with
        | Some tte -> ignore (Thread.deliver_signal k tte)
        | None -> ())
  in
  let put =
    Ksynth.entry
      (Ksynth.instantiate k ~name:(name ^ "/aput")
         ~template:(put_template ~q ~signal_consumer) ~invariants:[])
  in
  let get =
    Ksynth.entry
      (Ksynth.instantiate k ~name:(name ^ "/aget")
         ~template:(get_template ~q ~signal_producer) ~invariants:[])
  in
  (* the hcall closures captured [t]: mutate it rather than rebuild *)
  t.aq_put <- put;
  t.aq_get <- get;
  t
