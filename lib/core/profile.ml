(* kperf profiler: turns the PMU's pc samples and ktrace's owner
   attribution into readable profiles of the synthesized kernel.

   Two views of the same run:

   - the per-owner profile is *exact*: it reads the machine's cycle
     attribution (every elapsed cycle lands on exactly one owner), so
     the per-routine totals — plus a "(boot, pre-attach)" line for
     cycles spent before tracing was attached — sum to the machine's
     cycle total to the cycle;
   - the flat profile is *sampled*: the PMU's timer-driven pc samples,
     aggregated per code address and labelled with the synthesized
     routine that owns the address (via the kernel registry), show
     where inside a routine the time goes.

   Which synthesized code is hot stops being guesswork: the context
   switch, pipe put/get, and interrupt paths show up by name with
   cycle percentages.  `synthesis_cli profile` prints this and exports
   it as JSON. *)

open Quamachine

type line = { l_name : string; l_cycles : int; l_share : float }

type t = {
  p_total : int; (* machine cycle total; the owner lines sum to it *)
  p_owners : line list; (* exact, biggest first *)
  p_flat : (int * string * int) list; (* addr, owning routine, weight *)
  p_sample_count : int;
  p_sampled_cycles : int;
  p_period : int; (* 0 = sampling was off *)
  p_synth : Ksynth.stats; (* synthesis-cache counters for the run *)
  p_hist : (string * Histogram.t) list; (* kspan latency histograms *)
}

let boot_line_name = "(boot, pre-attach)"

(* Map a code address to the registry routine containing it. *)
let routine_at k =
  let routines =
    List.sort (fun (_, e1, _) (_, e2, _) -> compare e1 e2) (Kernel.registry k)
  in
  fun addr ->
    List.fold_left
      (fun acc (name, entry, len) ->
        if addr >= entry && addr < entry + len then Some name else acc)
      None routines

let collect ?(top = 24) k pmu =
  let m = k.Kernel.machine in
  let total = Machine.cycles m in
  let owners =
    match k.Kernel.ktrace with
    | Some tr ->
      let attributed = Ktrace.attributed_total tr in
      let lines =
        List.map
          (fun (name, cy) -> { l_name = name; l_cycles = cy; l_share = 0.0 })
          (Ktrace.owner_cycles tr)
      in
      (* cycles from before the attribution window opened, so the
         report partitions the whole machine total *)
      if total > attributed then
        lines
        @ [ { l_name = boot_line_name; l_cycles = total - attributed; l_share = 0.0 } ]
      else lines
    | None -> [ { l_name = "(unattributed)"; l_cycles = total; l_share = 0.0 } ]
  in
  let owners =
    List.map
      (fun l ->
        { l with l_share = 100.0 *. float_of_int l.l_cycles /. float_of_int (max 1 total) })
      owners
    |> List.sort (fun a b -> compare b.l_cycles a.l_cycles)
  in
  let name_of = routine_at k in
  let flat =
    Pmu.sample_histogram pmu
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun (addr, w) ->
           (addr, Option.value ~default:"(user/unowned)" (name_of addr), w))
  in
  {
    p_total = total;
    p_owners = owners;
    p_flat = flat;
    p_sample_count = Pmu.sample_count pmu;
    p_sampled_cycles = Pmu.sampled_cycles pmu;
    p_period = Pmu.sampling_period pmu;
    p_synth = Ksynth.stats k;
    p_hist = Metrics.histograms k.Kernel.metrics;
  }

(* The exactness invariant the CLI and tests assert. *)
let owners_total t = List.fold_left (fun a l -> a + l.l_cycles) 0 t.p_owners
let balanced t = owners_total t = t.p_total

let pp ?(top = 16) ppf t =
  Fmt.pf ppf "kperf profile: %d machine cycles, %d pc samples" t.p_total
    t.p_sample_count;
  if t.p_period > 0 then
    Fmt.pf ppf " (every %d cycles, %d cycles sampled)" t.p_period
      t.p_sampled_cycles;
  Fmt.pf ppf "@.@.cycles by owner (exact attribution):@.";
  List.iteri
    (fun i l ->
      if i < top then
        Fmt.pf ppf "  %10d cycles %5.1f%%  %s@." l.l_cycles l.l_share l.l_name)
    t.p_owners;
  if t.p_flat <> [] then begin
    Fmt.pf ppf "@.hottest sampled addresses:@.";
    List.iteri
      (fun i (addr, name, w) ->
        if i < top then Fmt.pf ppf "  %10d cycles  @%-6d %s@." w addr name)
      t.p_flat
  end;
  if t.p_hist <> [] then begin
    Fmt.pf ppf "@.latency histograms (kspan):@.";
    List.iter
      (fun (n, h) -> Fmt.pf ppf "  %-40s %a@." n Histogram.pp h)
      t.p_hist
  end;
  let s = t.p_synth in
  Fmt.pf ppf
    "@.synthesis cache: %d hits, %d misses, %d evictions, %d resynthesized; %d \
     pages cached, %d words live / %d reserved@."
    s.Ksynth.st_hits s.Ksynth.st_misses s.Ksynth.st_evictions s.Ksynth.st_resynth
    s.Ksynth.st_cached_pages s.Ksynth.st_live_words s.Ksynth.st_footprint_words

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Fmt.str
       "{\"total_cycles\":%d,\"sample_period\":%d,\"samples\":%d,\"sampled_cycles\":%d,\n\
        \"owners\":["
       t.p_total t.p_period t.p_sample_count t.p_sampled_cycles);
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str "\n{\"name\":\"%s\",\"cycles\":%d,\"share\":%.3f}"
           (json_escape l.l_name) l.l_cycles l.l_share))
    t.p_owners;
  Buffer.add_string b "\n],\n\"histograms\":[";
  List.iteri
    (fun i (n, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str
           "\n{\"name\":\"%s\",\"count\":%d,\"min\":%d,\"mean\":%.1f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d,\"max\":%d}"
           (json_escape n) (Histogram.count h) (Histogram.min_value h)
           (Histogram.mean h) (Histogram.quantile h 0.50)
           (Histogram.quantile h 0.90) (Histogram.quantile h 0.99)
           (Histogram.quantile h 0.999) (Histogram.max_value h)))
    t.p_hist;
  Buffer.add_string b "\n],\n\"flat\":[";
  List.iteri
    (fun i (addr, name, w) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str "\n{\"addr\":%d,\"routine\":\"%s\",\"weight\":%d}" addr
           (json_escape name) w))
    t.p_flat;
  let s = t.p_synth in
  Buffer.add_string b
    (Fmt.str
       "\n\
        ],\n\
        \"synth_cache\":{\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"resynth\":%d,\n\
        \"cached_pages\":%d,\"live_words\":%d,\"footprint_words\":%d,\"code_bytes_peak\":%d}}\n"
       s.Ksynth.st_hits s.Ksynth.st_misses s.Ksynth.st_evictions
       s.Ksynth.st_resynth s.Ksynth.st_cached_pages s.Ksynth.st_live_words
       s.Ksynth.st_footprint_words (4 * s.Ksynth.st_footprint_words));
  Buffer.contents b
