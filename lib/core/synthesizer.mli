(** The quaject creator and interfacer (§2.3).

    The creator builds a quaject in three stages: allocation,
    factorization (fold the quaject's run-time constants into its
    templates) and optimization.  The interfacer connects existing
    quajects in four: combination (pick the mechanism per §5.2),
    factorization, optimization, and dynamic link. *)

type quaject = {
  qj_name : string;
  qj_data : int;  (** the data block *)
  qj_data_words : int;
  mutable qj_ops : (string * int) list;  (** operation entry points *)
}

(** Address of operation slot [i] in the quaject's in-memory table. *)
val op_slot : quaject -> int -> int

val op_entry : quaject -> string -> int

(** [create k ~name ~data_words ops]: allocation, then one
    factorize+optimize per (op name, template, invariants).  Every
    template also receives ["self"] — the data block address. *)
val create :
  Kernel.t ->
  name:string ->
  data_words:int ->
  (string * Template.t * (string * int) list) list ->
  quaject

(** Deallocation: release the quaject's synthesized operation pages
    back to the synthesis cache and free its data block. *)
val destroy : Kernel.t -> quaject -> unit

type connection = {
  cn_connector : Quaject.connector;
  cn_call : int;  (** code the producer side invokes *)
  cn_queue : Kqueue.t option;
}

(** Combination + factorization + optimization for one arc: a direct
    (possibly monitored) call when one side is passive, an optimistic
    queue of the right flavour when both are active.  Passive-passive
    pairs need a pump thread and are rejected here. *)
val interface :
  Kernel.t ->
  name:string ->
  producer:Quaject.port ->
  consumer:Quaject.port ->
  consumer_entry:int ->
  unit ->
  connection

(** Dynamic link: repoint an operation slot. *)
val relink : Kernel.t -> quaject -> slot:int -> entry:int -> unit

(** Passive-passive connection (§5.2's xclock): a kernel service
    thread that repeatedly calls the producer operation (value in r0),
    feeds it to the consumer operation (argument in r1), and yields
    between transfers.  Returns the pump thread. *)
val pump : Kernel.t -> name:string -> source_entry:int -> sink_entry:int -> Kernel.tte
