(* Request-scoped causal tracing.  All state here is host-side — span
   bookkeeping never charges simulated cycles; the only machine-visible
   cost is the probe Hcalls, and those exist only when [enabled] was
   true at synthesis time. *)

open Quamachine
module I = Insn

type phase = Queue_wait | Service | Interrupt

let phase_name = function
  | Queue_wait -> "wait"
  | Service -> "service"
  | Interrupt -> "interrupt"

type span = {
  sp_id : int;
  sp_pipeline : string;
  sp_detail : string;
  sp_opened : int; (* machine cycles *)
  mutable sp_last : int; (* cycles at the previous hop *)
}

(* Per-queue side-table: spans parked between the producer's publish
   and the consumer's drain, FIFO like the queue itself.  Cumulative
   weights (words for pipes, items for queues) match one drain
   against however many enqueues it covered. *)
type qstate = {
  mutable q_cum_put : int;
  mutable q_cum_take : int;
  mutable q_enter : int; (* cycles at stage entry (pipe write entry) *)
  mutable q_last_put : int;
  q_slots : (int * int) Queue.t; (* span id, q_cum_put after its enqueue *)
}

type t = {
  machine : Machine.t;
  metrics : Metrics.t;
  trace : Ktrace.t option;
  enabled : bool;
  mutable next_id : int;
  open_tbl : (int, span) Hashtbl.t;
  queues : (int, qstate) Hashtbl.t;
}

let create ?(enabled = true) ?trace ~metrics machine =
  {
    machine;
    metrics;
    trace;
    enabled;
    next_id = 1;
    open_tbl = Hashtbl.create 32;
    queues = Hashtbl.create 8;
  }

let enabled t = t.enabled
let now t = Machine.cycles t.machine

let emit t kind =
  match t.trace with Some tr -> Ktrace.emit tr kind | None -> ()

let open_count t = Hashtbl.length t.open_tbl

let open_spans t =
  Hashtbl.fold
    (fun _ sp acc -> (sp.sp_id, sp.sp_pipeline, sp.sp_detail, sp.sp_opened) :: acc)
    t.open_tbl []
  |> List.sort compare

let pp_open ppf t =
  match open_spans t with
  | [] -> Fmt.pf ppf "  (none)@."
  | spans ->
    List.iter
      (fun (id, pipeline, detail, opened) ->
        Fmt.pf ppf "  #%-5d %-12s %-24s opened at cycle %d@." id pipeline
          detail opened)
      spans

(* ------------------------------------------------------------------ *)
(* Direct lifecycle *)

let open_at t ~pipeline ~detail ~opened =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.open_tbl id
    { sp_id = id; sp_pipeline = pipeline; sp_detail = detail; sp_opened = opened;
      sp_last = opened };
  Metrics.bump t.metrics "kspan.opened";
  emit t (Ktrace.Span_open (id, pipeline));
  id

let open_span t ~pipeline ~detail = open_at t ~pipeline ~detail ~opened:(now t)

let hop t id ~stage ~phase =
  match Hashtbl.find_opt t.open_tbl id with
  | None -> Metrics.bump t.metrics "kspan.orphan_hops"
  | Some sp ->
    let c = now t in
    Metrics.observe t.metrics
      (Fmt.str "kspan.%s.%s.%s_cycles" sp.sp_pipeline stage (phase_name phase))
      (c - sp.sp_last);
    sp.sp_last <- c;
    emit t (Ktrace.Span_hop (id, stage ^ "/" ^ phase_name phase))

let close_common t id ~tag ~counter =
  match Hashtbl.find_opt t.open_tbl id with
  | None -> Metrics.bump t.metrics "kspan.orphan_closes"
  | Some sp ->
    Hashtbl.remove t.open_tbl id;
    Metrics.observe t.metrics
      (Fmt.str "kspan.%s.total_cycles" sp.sp_pipeline)
      (now t - sp.sp_opened);
    Metrics.bump t.metrics counter;
    emit t (Ktrace.Span_close (id, match tag with Some s -> s | None -> sp.sp_pipeline))

let close t id = close_common t id ~tag:None ~counter:"kspan.closed"

let fail t id ~reason =
  close_common t id ~tag:(Some ("!" ^ reason)) ~counter:"kspan.failed"

(* ------------------------------------------------------------------ *)
(* Queue carriage *)

let qstate t queue =
  match Hashtbl.find_opt t.queues queue with
  | Some q -> q
  | None ->
    let q =
      { q_cum_put = 0; q_cum_take = 0; q_enter = 0; q_last_put = 0;
        q_slots = Queue.create () }
    in
    Hashtbl.replace t.queues queue q;
    q

let stage_enter t ~queue = (qstate t queue).q_enter <- now t

let enqueue t ~queue ~pipeline ~detail ~stage ~weight =
  let q = qstate t queue in
  let c = now t in
  (* The request existed since the writer entered the stage (or since
     its previous burst published): open the span back then so the
     total includes writer service, and book that service now. *)
  let base = max q.q_enter q.q_last_put in
  let base = if base = 0 || base > c then c else base in
  let id = open_at t ~pipeline ~detail ~opened:base in
  hop t id ~stage ~phase:Service;
  q.q_last_put <- c;
  q.q_cum_put <- q.q_cum_put + max 1 weight;
  Queue.push (id, q.q_cum_put) q.q_slots

let dequeue t ~queue ~stage ~phase ~weight =
  let q = qstate t queue in
  q.q_cum_take <- q.q_cum_take + max 1 weight;
  let rec drain () =
    match Queue.peek_opt q.q_slots with
    | Some (id, covered) when covered <= q.q_cum_take ->
      ignore (Queue.pop q.q_slots);
      hop t id ~stage ~phase;
      close t id;
      drain ()
    | _ -> ()
  in
  drain ()

let queue_put t ~queue ~pipeline ~detail =
  let q = qstate t queue in
  let id = open_span t ~pipeline ~detail in
  q.q_cum_put <- q.q_cum_put + 1;
  Queue.push (id, q.q_cum_put) q.q_slots

let queue_take t ~queue =
  dequeue t ~queue ~stage:"get" ~phase:Queue_wait ~weight:1

let slot_reset t ~queue =
  match Hashtbl.find_opt t.queues queue with
  | None -> ()
  | Some q ->
    Queue.iter (fun (id, _) -> fail t id ~reason:"reset") q.q_slots;
    Queue.clear q.q_slots;
    q.q_cum_put <- 0;
    q.q_cum_take <- 0;
    q.q_enter <- 0;
    q.q_last_put <- 0

(* ------------------------------------------------------------------ *)
(* Probes *)

let probe t f =
  if not t.enabled then []
  else [ I.Hcall (Machine.register_hcall t.machine (fun m -> f m)) ]
