(* The Synthesis kernel instance.

   Holds the simulated machine, its devices, the kernel allocator, the
   thread table, and the registry of synthesized code.  The running
   thread is identified by the [Layout.cur_tte_cell] kernel global,
   which every thread's synthesized context-switch-in code keeps
   current — the host-side structures mirror what the code in the
   machine does, they never drive it. *)

open Quamachine

type thread_state = Ready | Blocked | Stopped | Zombie

(* ksynth: one memoized code page.  A page is the unit the synthesis
   cache hands out: instantiations with the same key share the page
   (read-only by convention), refcounted by live handles.  Patching a
   shared page forks a private copy ([sp_cached = false]); patching a
   sole-owner cached page detaches it from the cache in place. *)
type synth_page = {
  sp_key : string; (* cache key; stable across re-instantiations *)
  sp_name : string; (* name of the first instantiation *)
  sp_kind : string; (* arena kind (name prefix by default) *)
  mutable sp_entry : int;
  sp_len : int;
  mutable sp_syms : (string * int) list;
  mutable sp_refs : int; (* live handles *)
  mutable sp_hits : int;
  mutable sp_stamp : int; (* LRU clock at last use *)
  mutable sp_cached : bool; (* still reachable through the cache? *)
  sp_pinned : bool; (* boot-time install: never evicted or released *)
}

(* ksynth: the recipe kept for an evicted page — kheal's generator
   record outliving the code it generated, so a later re-miss on the
   same key resynthesizes from the recorded template + invariants
   (eviction is deliberate forgetting, not amnesia). *)
type synth_recipe = {
  rc_name : string;
  rc_kind : string;
  rc_template : Template.t;
  rc_env : (string * int) list;
}

type tte = {
  tid : int;
  base : int; (* data address of the 256-word TTE block *)
  map_id : int;
  mutable cpu : int; (* home core: whose ready ring, cells, timer *)
  mutable state : thread_state;
  mutable sw_out : int; (* code entries of the synthesized switch code *)
  mutable sw_in : int;
  mutable sw_in_mmu : int;
  mutable jmp_slot : int; (* patchable Jmp ending sw_out (ready queue) *)
  mutable quantum_slot : int; (* patchable Move #quantum in sw_in *)
  mutable uses_fp : bool;
  mutable quantum_us : int;
  mutable rq_next : tte option; (* host mirror of the executable ring *)
  mutable rq_prev : tte option;
  mutable waiting_on : string option;
  mutable owned_blocks : int list; (* kalloc blocks freed at destroy *)
  mutable owned_pages : int list; (* ksynth page entries released at destroy *)
  mutable is_system : bool; (* kernel service threads don't keep the machine alive *)
  (* enough of the creation parameters to rebuild the initial context
     after a crash (Thread.restart): original entry point and user
     stack extent *)
  mutable entry : int;
  mutable ustack : int;
  mutable ustack_words : int;
}

(* A waiting queue for one resource (§4.1: each resource has its own
   waiting queue; there is no general blocked queue to traverse). *)
type waitq = {
  wq_name : string;
  mutable waiters : tte list;
  mutable wq_block_hcall : int; (* memoized host-call ids, -1 = none *)
  mutable wq_unblock_hcall : int;
}

let waitq ~name =
  { wq_name = name; waiters = []; wq_block_hcall = -1; wq_unblock_hcall = -1 }

(* One entry in the bounded fault log: when (simulated cycles), who,
   where, and why.  [f_tid] is 0 for faults not attributable to a
   thread (e.g. a machine double fault); [f_cpu] is the core the fault
   was recorded on. *)
type fault_entry = { f_cycle : int; f_tid : int; f_cpu : int; f_reason : string }

(* kheal: one record per synthesized code region — everything needed
   to regenerate the region from scratch.  The template plus the
   recorded invariants ([cr_env], the exact bindings synthesis folded
   into the code) make kernel code *data the kernel can rebuild*: a
   corrupted region is detected by checksum (or by a faulting PC
   inside it) and resynthesized in place.

   [cr_patches] records every legitimate post-synthesis patch (the
   ready queue's jmp targets, the scheduler's quantum immediates) so
   repair restores the *live* values, not the template defaults, and
   the checksum always describes the currently-accepted content.
   [cr_mutable] names the slots whose content encodes scheduling
   state rather than template content — cross-kernel code comparison
   (the explorer's steady-state hash) skips them. *)
type code_region = {
  cr_name : string;
  cr_entry : int;
  cr_len : int;
  cr_template : Template.t;
  cr_env : (string * int) list;
  mutable cr_patches : (int * Insn.insn) list;
  mutable cr_mutable : int list;
  mutable cr_checksum : int;
}

type t = {
  machine : Machine.t;
  alloc : Kalloc.t;
  timer : Devices.Timer.t; (* core 0's quantum timer *)
  (* SMP: one private quantum timer per core ([timers.(0) == timer]);
     each posts its interrupt to its own core only *)
  timers : Devices.Timer.t array;
  alarm : Devices.Timer.t;
  tty : Devices.Tty.t;
  disk : Devices.Disk.t;
  ad : Devices.Ad.t;
  da : Devices.Da.t;
  threads : (int, tte) Hashtbl.t;
  by_base : (int, tte) Hashtbl.t;
  mutable next_tid : int;
  (* per-core executable ready rings: [rq_anchors.(c)] is core [c]'s
     anchor thread (None = empty ring) *)
  rq_anchors : tte option array;
  (* synthesized-code registry: (name, entry, instruction count) *)
  mutable registry : (string * int * int) list;
  (* kheal region table, newest first: every registry entry also gets
     a regenerable region record *)
  mutable code_regions : code_region list;
  mutable synthesized_insns : int;
  (* cost of running the synthesizer: template setup + per emitted
     instruction (factorization + peephole + store).  Calibrated so
     that open(/dev/null) spends ~40% of its time generating code
     (§6.3). *)
  codegen_cycles_fixed : int;
  codegen_cycles_per_insn : int;
  (* default vector table copied into each new thread's TTE *)
  default_vectors : int array;
  (* shared kernel entry points by name *)
  shared : (string, int) Hashtbl.t;
  (* ksynth: the synthesis cache.  [synth_cache] maps keys to live
     pages; [page_index] covers every code address of every live page
     (the O(1) shared-page test in [patch_code]); [synth_arenas] are
     the per-region-kind code allocators; [synth_caps] the optional
     per-kind word budgets that trigger LRU eviction; [synth_evicted]
     the recipes of forgotten pages. *)
  synth_cache : (string, synth_page) Hashtbl.t;
  page_index : (int, synth_page) Hashtbl.t;
  synth_arenas : (string, Kalloc.arena) Hashtbl.t;
  synth_caps : (string, int) Hashtbl.t;
  synth_evicted : (string, synth_recipe) Hashtbl.t;
  mutable synth_clock : int;
  (* recycled pipe carcasses: (cap, desc, buf, readers, writers).
     Reusing the cells and wait queues keeps a reopened pipe's
     synthesized code byte-identical, which is what lets the cache
     hit (fresh wait queues would mint fresh host-call ids). *)
  mutable pipe_carcasses : (int * int * int * waitq * waitq) list;
  (* per-core idle threads ([idle_threads.(0)] is the boot idle) *)
  idle_threads : tte option array;
  (* threads with a cross-core signal awaiting their home core's
     signal IPI (drained by the boot-installed IPI handler) *)
  mutable sig_xc : tte list;
  (* error traps and kernel-detected failures, newest first, bounded
     at [fault_log_cap] (oldest entries drop; [fault_dropped] counts
     them, and "kernel.faults_total" in [metrics] never loses any) *)
  mutable fault_log : fault_entry list;
  mutable fault_log_len : int;
  mutable fault_dropped : int;
  (* kernel-wide counter/gauge registry (faults, disk retries,
     watchdog restarts...) *)
  metrics : Metrics.t;
  (* observability: None = tracing never attached, zero overhead *)
  mutable ktrace : Ktrace.t option;
  (* crash recovery: installed by Boot (the implementation lives in
     Thread, which this module cannot reference) *)
  mutable restart_hook : (tte -> unit) option;
  (* observability: request-scoped spans; None = never attached *)
  mutable kspan : Kspan.t option;
  (* most recent flight-recorder dump (see [postmortem]) *)
  mutable last_postmortem : string option;
}

(* The fault log keeps the most recent entries only: a wedged machine
   retrying forever must not grow an unbounded list. *)
let fault_log_cap = 64

(* ------------------------------------------------------------------ *)
(* Cores *)

let cores k = Array.length k.rq_anchors
let timer_for k c = k.timers.(c)
let anchor k c = k.rq_anchors.(c)
let set_anchor k c v = k.rq_anchors.(c) <- v
let idle_of k c = k.idle_threads.(c)
let set_idle k c t = k.idle_threads.(c) <- Some t

let is_idle k t =
  Array.exists (function Some i -> i == t | None -> false) k.idle_threads

(* The core the caller is executing on — home of the ready ring and
   quantum timer that host services should act on by default. *)
let this_cpu k = Machine.current_core k.machine

let create ?(cost = Cost.sun3_emulation) ?(mem_words = 1 lsl 20) ?(cores = 1) () =
  let machine = Machine.create ~mem_words ~cores cost in
  Devices.Rtc.install machine;
  Devices.Cpu_control.install machine;
  let timer = Devices.Timer.install machine in
  (* Each core gets a private quantum timer posting to itself; core 0
     keeps the historical register and device name, so a one-core
     kernel builds an identical machine. *)
  let timers =
    Array.init cores (fun c ->
        if c = 0 then timer
        else
          Devices.Timer.install
            ~name:(Printf.sprintf "timer%d" c)
            ~addr:(Mmio_map.timer_alarm_for c) ~cpu:c machine)
  in
  (* The per-core register window: shared kernel paths read/write the
     *executing* core's current-thread cells through these, at the
     same one-reference cost as touching the cell directly. *)
  let percpu_window cell_for addr =
    Machine.map_mmio_read machine ~addr (fun () ->
        Machine.peek machine (cell_for (Machine.current_core machine)));
    Machine.map_mmio_write machine ~addr (fun v ->
        Machine.poke machine (cell_for (Machine.current_core machine)) v)
  in
  percpu_window Layout.cur_sw_out_cell_for Mmio_map.cur_sw_out;
  percpu_window Layout.cur_tte_cell_for Mmio_map.cur_tte;
  percpu_window Layout.cur_tid_cell_for Mmio_map.cur_tid;
  percpu_window Layout.chain_scratch_cell_for Mmio_map.chain_scratch;
  let alarm =
    Devices.Timer.install ~name:"alarm" ~addr:Mmio_map.alarm_set
      ~level:Mmio_map.alarm_level ~vector:Mmio_map.alarm_vector machine
  in
  let tty = Devices.Tty.install machine in
  let disk = Devices.Disk.install machine in
  let ad = Devices.Ad.install machine in
  let da = Devices.Da.install machine in
  let alloc = Kalloc.create machine ~base:Layout.heap_base ~limit:Layout.heap_limit in
  (* reserve code address 0 so that a zero vector means "unset" *)
  let guard = Machine.append_code machine [ Insn.Halt ] in
  assert (guard = 0);
  {
    machine;
    alloc;
    timer;
    timers;
    alarm;
    tty;
    disk;
    ad;
    da;
    threads = Hashtbl.create 32;
    by_base = Hashtbl.create 32;
    next_tid = 1;
    rq_anchors = Array.make cores None;
    registry = [];
    code_regions = [];
    synthesized_insns = 0;
    codegen_cycles_fixed = 120;
    codegen_cycles_per_insn = 5;
    default_vectors = Array.make Insn.Vector.table_size 0;
    shared = Hashtbl.create 32;
    synth_cache = Hashtbl.create 64;
    page_index = Hashtbl.create 256;
    synth_arenas = Hashtbl.create 8;
    synth_caps = Hashtbl.create 8;
    synth_evicted = Hashtbl.create 32;
    synth_clock = 0;
    pipe_carcasses = [];
    idle_threads = Array.make cores None;
    sig_xc = [];
    fault_log = [];
    fault_log_len = 0;
    fault_dropped = 0;
    metrics = Metrics.create ();
    ktrace = None;
    restart_hook = None;
    kspan = None;
    last_postmortem = None;
  }

(* ------------------------------------------------------------------ *)
(* Tracing *)

(* Emit an event if tracing is attached; free otherwise. *)
let trace k kind = match k.ktrace with Some tr -> Ktrace.emit tr kind | None -> ()

(* Probe fragment for synthesized code: empty unless tracing is
   attached and enabled, so untraced kernels generate identical
   instruction streams. *)
let trace_probe k kind =
  match k.ktrace with Some tr -> Ktrace.probe tr kind | None -> []

let trace_probe_status k f =
  match k.ktrace with Some tr -> Ktrace.probe_status tr f | None -> []

(* ------------------------------------------------------------------ *)
(* Spans *)

(* Run [f] on the span layer if one is attached; free otherwise. *)
let span k f = match k.kspan with Some sp -> f sp | None -> ()

(* Span probe fragment for synthesized code: empty unless a span layer
   is attached and enabled at synthesis time — the same zero-overhead
   discipline as [trace_probe]. *)
let span_probe k f =
  match k.kspan with Some sp -> Kspan.probe sp (f sp) | None -> []

(* ------------------------------------------------------------------ *)
(* Fault log *)

(* Record a fault: bounded structured log (newest first), the
   "kernel.faults_total" metrics counter, and a ktrace event when a
   trace is attached.  Host-side bookkeeping — charges nothing. *)
let log_fault k ~tid ~reason =
  Metrics.bump k.metrics "kernel.faults_total";
  trace k (Ktrace.Fault reason);
  if k.fault_log_len >= fault_log_cap then begin
    (* newest-first list: drop the oldest entry off the tail *)
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | e :: tl -> e :: take (n - 1) tl
    in
    k.fault_log <- take (fault_log_cap - 1) k.fault_log;
    k.fault_log_len <- fault_log_cap - 1;
    k.fault_dropped <- k.fault_dropped + 1
  end;
  k.fault_log <-
    {
      f_cycle = Machine.cycles k.machine;
      f_tid = tid;
      f_cpu = Machine.current_core k.machine;
      f_reason = reason;
    }
    :: k.fault_log;
  k.fault_log_len <- k.fault_log_len + 1

let faults_total k = Metrics.read k.metrics "kernel.faults_total"

(* Attach a trace to this kernel: machine hooks, cycle attribution,
   and ownership of everything synthesized so far.  Code synthesized
   from now on registers automatically. *)
let attach_tracing k tr =
  k.ktrace <- Some tr;
  Ktrace.install tr;
  List.iter
    (fun (name, entry, n) -> ignore (Ktrace.register_owner tr ~name ~entry ~len:n))
    k.registry

(* Attach the span layer.  Histograms land in the kernel-wide metrics
   registry; span events flow into the attached trace (and its black
   box) when there is one.  Attach before synthesizing the pipelines
   to be observed — probes are spliced at synthesis time. *)
let attach_spans ?(enabled = true) k =
  let sp = Kspan.create ~enabled ?trace:k.ktrace ~metrics:k.metrics k.machine in
  k.kspan <- Some sp;
  sp

(* ------------------------------------------------------------------ *)
(* Code installation backends.  [Ksynth.instantiate] is the
   code-generation entry point — it memoizes on (template id,
   invariants, content), allocates from recyclable arenas, and calls
   [install_at] below to place the optimized body. *)

let log_src = Logs.Src.create "synthesis.kernel" ~doc:"Synthesis kernel code generation"

module Log = (val Logs.src_log log_src)

(* ------------------------------------------------------------------ *)
(* kheal: the synthesized-code region table.

   Every synthesized fragment is recorded with its generator (template
   + bound invariants) and a checksum of the installed instructions.
   Checksumming is host-side arithmetic over the code store — free in
   simulated cycles, the same discipline as the watchdog — while
   *repair* charges the normal code-generation cost, because it runs
   the synthesizer again. *)

let checksum_region m ~entry ~len =
  let h = ref 0x811C9DC5 in
  for a = entry to entry + len - 1 do
    h := ((!h * 16777619) lxor Hashtbl.hash (Machine.read_code m a)) land max_int
  done;
  !h

let register_region k ~name ~entry ~len ~template ~env =
  k.code_regions <-
    {
      cr_name = name;
      cr_entry = entry;
      cr_len = len;
      cr_template = template;
      cr_env = env;
      cr_patches = [];
      cr_mutable = [];
      cr_checksum = checksum_region k.machine ~entry ~len;
    }
    :: k.code_regions

(* ksynth backend: install an already-optimized body at [at] — an
   arena range whose every word is a patchable slot — with registry,
   region and trace bookkeeping.  Charging is the caller's business:
   the cache charges full generation cost on a miss and a table probe
   on a hit. *)
let install_at k ~name ~at ~template ~env optimized =
  let n = Asm.length optimized in
  let resolved, syms = Asm.resolve ~at optimized in
  Log.debug (fun f -> f "installed %s: %d insns at %d" name n at);
  List.iteri (fun i insn -> Machine.patch_code k.machine (at + i) insn) resolved;
  k.registry <- (name, at, n) :: k.registry;
  register_region k ~name ~entry:at ~len:n ~template ~env;
  k.synthesized_insns <- k.synthesized_insns + n;
  (match k.ktrace with
  | Some tr ->
    ignore (Ktrace.register_owner tr ~name ~entry:at ~len:n);
    Ktrace.emit tr (Ktrace.Synthesized (name, n))
  | None -> ());
  syms

(* ksynth backend: forget a freed or evicted page's registry and
   region records.  The generator may live on in [synth_evicted] —
   eviction is deliberate forgetting, not amnesia. *)
let unregister_region k ~entry =
  k.registry <- List.filter (fun (_, e, _) -> e <> entry) k.registry;
  k.code_regions <- List.filter (fun r -> r.cr_entry <> entry) k.code_regions

(* ------------------------------------------------------------------ *)
(* Threads *)

let thread k tid = Hashtbl.find_opt k.threads tid

let thread_exn k tid =
  match thread k tid with
  | Some t -> t
  | None -> invalid_arg ("Kernel.thread: no thread " ^ string_of_int tid)

(* The running thread, as recorded by synthesized sw_in code — by
   default on the executing core, or on an explicit [cpu]. *)
let current ?cpu k =
  let c = match cpu with Some c -> c | None -> this_cpu k in
  let base = Machine.peek k.machine (Layout.cur_tte_cell_for c) in
  Hashtbl.find_opt k.by_base base

let current_exn ?cpu k =
  match current ?cpu k with
  | Some t -> t
  | None -> failwith "Kernel.current: no thread is running"

(* Restart a crashed thread: rebuild its initial context and put it
   back at the front of the ready queue.  The implementation is
   [Thread.restart], installed as a hook at boot (Thread sits above
   this module in the dependency order). *)
let restart_thread k t =
  match k.restart_hook with
  | Some f -> f t
  | None -> invalid_arg "Kernel.restart_thread: no restart hook (kernel not booted)"

(* ------------------------------------------------------------------ *)
(* kheal: audit and repair-by-resynthesis.

   Detection has two channels: a checksum walk over the region table
   ([audit_code], run by the watchdog and by anyone host-side), and
   the faulting-PC test ([find_region], run by Boot's
   illegal-instruction path — a corrupted instruction no longer
   decodes, and the exception frame holds its address).  Repair reruns
   the synthesizer — instantiate the recorded template against the
   recorded invariants, optimize, resolve at the original entry — and
   patches the region in place, so every caller's absolute entry and
   every quaject op slot stays valid.  Live patches (the ready ring's
   jmp targets, quantum immediates) are reapplied over the template
   defaults. *)

let find_region k pc =
  List.find_opt
    (fun r -> pc >= r.cr_entry && pc < r.cr_entry + r.cr_len)
    k.code_regions

let find_region_by_name k name =
  List.find_opt (fun r -> r.cr_name = name) k.code_regions

let region_dirty k r =
  checksum_region k.machine ~entry:r.cr_entry ~len:r.cr_len <> r.cr_checksum

let code_regions k = List.rev k.code_regions

(* ------------------------------------------------------------------ *)
(* Flight recorder: assemble the crash black box into one readable
   dump — last events, open spans, fault log, kheal registry state,
   metrics.  Pure host-side formatting, callable from any failure path
   (double fault, failed repair, watchdog escalation, a harness
   invariant trip); the dump is also kept in [last_postmortem] so the
   harness and the CLI can retrieve it after the run. *)

let postmortem ?(reason = "unspecified") k =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let m = k.machine in
  Fmt.pf ppf "=== postmortem: %s ===@." reason;
  Fmt.pf ppf "cycle %d  insns %d  current tid %s@." (Machine.cycles m)
    (Machine.insns_executed m)
    (match current k with Some t -> string_of_int t.tid | None -> "-");
  (match k.kspan with
  | None -> ()
  | Some sp ->
    Fmt.pf ppf "@.open spans (%d in flight):@." (Kspan.open_count sp);
    Kspan.pp_open ppf sp);
  (match k.ktrace with
  | None -> Fmt.pf ppf "@.black box: no trace attached@."
  | Some tr ->
    let evs = Ktrace.blackbox_events tr in
    Fmt.pf ppf "@.black box (last %d events):@." (List.length evs);
    List.iter (fun e -> Fmt.pf ppf "  %a@." Ktrace.pp_event e) evs);
  Fmt.pf ppf "@.fault log (newest first%s):@."
    (if k.fault_dropped > 0 then Fmt.str ", %d dropped" k.fault_dropped else "");
  (match k.fault_log with
  | [] -> Fmt.pf ppf "  (empty)@."
  | log ->
    List.iteri
      (fun i e ->
        if i < 16 then
          Fmt.pf ppf "  cycle %-10d tid %-3d %s@." e.f_cycle e.f_tid e.f_reason)
      log);
  let dirty =
    List.filter_map
      (fun r -> if region_dirty k r then Some r.cr_name else None)
      k.code_regions
  in
  Fmt.pf ppf "@.kheal: %d regions, %d dirty%s, %d repairs, %d insns synthesized@."
    (List.length k.code_regions) (List.length dirty)
    (match dirty with [] -> "" | l -> " (" ^ String.concat ", " l ^ ")")
    (Metrics.read k.metrics "kernel.code_repairs_total")
    k.synthesized_insns;
  Fmt.pf ppf "@.metrics:@.%a" Metrics.pp k.metrics;
  Format.pp_print_flush ppf ();
  Metrics.bump k.metrics "kernel.postmortems_total";
  let s = Buffer.contents buf in
  k.last_postmortem <- Some s;
  s

let repair_region ?(origin = "audit") k r =
  let raw = Template.instantiate r.cr_template ~env:r.cr_env in
  let optimized = Peephole.optimize raw in
  let n = Asm.length optimized in
  if n <> r.cr_len then begin
    (* unrepairable: the generator no longer reproduces the region —
       dump the black box before giving up *)
    let tid = match current k with Some t -> t.tid | None -> 0 in
    log_fault k ~tid ~reason:("repair_failed/" ^ r.cr_name);
    ignore (postmortem ~reason:("failed repair: " ^ r.cr_name) k);
    failwith ("Kernel.repair_region: resynthesis length drifted for " ^ r.cr_name)
  end;
  (* repair *is* synthesis: same charge as the original generation *)
  Machine.charge k.machine (k.codegen_cycles_fixed + (n * k.codegen_cycles_per_insn));
  let resolved, _ = Asm.resolve ~at:r.cr_entry optimized in
  List.iteri
    (fun i insn -> Machine.patch_code k.machine (r.cr_entry + i) insn)
    resolved;
  List.iter
    (fun (addr, insn) -> Machine.patch_code k.machine addr insn)
    r.cr_patches;
  r.cr_checksum <- checksum_region k.machine ~entry:r.cr_entry ~len:r.cr_len;
  Metrics.bump k.metrics "kernel.code_repairs_total";
  trace k (Ktrace.Synthesized (r.cr_name, n));
  let tid = match current k with Some t -> t.tid | None -> 0 in
  log_fault k ~tid ~reason:(Printf.sprintf "code_repair/%s/%s" origin r.cr_name)

let audit_code ?(origin = "audit") k =
  let repaired = ref 0 in
  List.iter
    (fun r ->
      if region_dirty k r then begin
        repair_region ~origin k r;
        incr repaired
      end)
    k.code_regions;
  !repaired

let code_repairs_total k = Metrics.read k.metrics "kernel.code_repairs_total"

(* Route every legitimate post-synthesis patch through here: the
   owning region re-checksums (and remembers the patch for repair), so
   runtime patching and corruption detection coexist.  If the region
   is already corrupted, repair it first — a patch must never bless
   corrupted content into the checksum. *)
let patch_code k addr insn =
  (* ksynth: writing into a cache-owned page.  A page shared by several
     handles is read-only — callers must fork a private copy first
     ([Ksynth.patch] does).  A sole-owner cached page detaches in
     place: once patched its content no longer matches its cache key,
     so the cache must never hand it to a fresh instantiation. *)
  (match Hashtbl.find_opt k.page_index addr with
  | Some p when p.sp_refs > 1 ->
    invalid_arg
      (Printf.sprintf
         "Kernel.patch_code: page %s is shared by %d handles (copy-on-patch: fork first)"
         p.sp_name p.sp_refs)
  | Some p when p.sp_cached && not p.sp_pinned ->
    p.sp_cached <- false;
    Hashtbl.remove k.synth_cache p.sp_key
  | _ -> ());
  (match find_region k addr with
  | Some r when region_dirty k r -> repair_region ~origin:"patch" k r
  | _ -> ());
  Machine.patch_code k.machine addr insn;
  match find_region k addr with
  | Some r ->
    r.cr_patches <- (addr, insn) :: List.remove_assoc addr r.cr_patches;
    r.cr_checksum <- checksum_region k.machine ~entry:r.cr_entry ~len:r.cr_len
  | None -> ()

(* Slots whose content encodes scheduling state (jmp targets, quantum
   immediates): cross-kernel code comparison must skip them. *)
let region_mark_mutable k ~addr =
  match find_region k addr with
  | Some r -> if not (List.mem addr r.cr_mutable) then r.cr_mutable <- addr :: r.cr_mutable
  | None -> ()

(* Deterministic fingerprint of all regenerable code content,
   mutable slots excluded: two kernels that booted the same way agree
   on it, and a repaired kernel must converge back to it. *)
let code_state_hash k =
  List.fold_left
    (fun acc r ->
      let h = ref (Hashtbl.hash (r.cr_name, r.cr_entry, r.cr_len)) in
      for a = r.cr_entry to r.cr_entry + r.cr_len - 1 do
        if not (List.mem a r.cr_mutable) then
          h := ((!h * 16777619) lxor Hashtbl.hash (Machine.read_code k.machine a))
               land max_int
      done;
      ((acc * 131) lxor !h) land max_int)
    0x2545F491 (code_regions k)

(* ------------------------------------------------------------------ *)
(* Vector table helpers *)

let vector_addr tte idx = tte.base + Layout.Tte.off_vectors + idx

let set_vector k tte idx handler =
  Machine.poke k.machine (vector_addr tte idx) handler

let get_vector k tte idx = Machine.peek k.machine (vector_addr tte idx)

(* Set a default vector and propagate to all existing threads (used
   when a device server comes up after threads were created). *)
let set_vector_all k idx handler =
  k.default_vectors.(idx) <- handler;
  Hashtbl.iter (fun _ tte -> set_vector k tte idx handler) k.threads

(* ------------------------------------------------------------------ *)
(* Synthesized-code accounting (kernel size report, §6.4) *)

let registry k = List.rev k.registry
let synthesized_insns k = k.synthesized_insns

let registry_report k =
  let by_prefix = Hashtbl.create 16 in
  List.iter
    (fun (name, _, n) ->
      let prefix =
        match String.index_opt name '/' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      let cur = try Hashtbl.find by_prefix prefix with Not_found -> (0, 0) in
      Hashtbl.replace by_prefix prefix (fst cur + 1, snd cur + n))
    k.registry;
  Hashtbl.fold (fun p (count, insns) acc -> (p, count, insns) :: acc) by_prefix []
  |> List.sort compare
