(** Context-switch code synthesis (§4.2).

    Each thread owns specialized switch-out/switch-in procedures with
    its invariants folded in; the timer vector of its private vector
    table points straight at its switch-out.  Threads pay for FP state
    only after their first FP instruction traps and the switch code is
    resynthesized. *)

type switch_code = {
  c_sw_out : int;
  c_sw_in : int;
  c_sw_in_mmu : int;
  c_jmp_slot : int; (** the ready queue's patchable jmp *)
  c_quantum_slot : int; (** the scheduler's patchable quantum *)
  c_pages : int list; (** ksynth page entries backing the code *)
}

(** SR value for kernel-mode continuations (supervisor, IPL 0). *)
val kernel_sr : int

(** [cpu] is the thread's home core: its cur_* kernel cells and its
    quantum-timer register are folded in as invariants (core 0 binds
    exactly the uniprocessor's constants, so one-core switch code is
    byte-identical). *)
val synthesize :
  Kernel.t ->
  ?cpu:int ->
  tte_base:int ->
  tid:int ->
  map_id:int ->
  quantum_us:int ->
  uses_fp:bool ->
  unit ->
  switch_code

(** Install switch code into a thread and reconnect the ready queue
    around the new entry points. *)
val apply_switch_code : Kernel.t -> Kernel.tte -> switch_code -> unit

(** Lazy-FP: rebuild the switch code with FP save/restore after the
    first FP instruction trapped. *)
val resynthesize_with_fp : Kernel.t -> Kernel.tte -> unit

(** SMP migration: rebuild the switch code with the destination core's
    invariants and rehome the thread there.  The thread must be off
    every ready ring; raises [Invalid_argument] otherwise. *)
val resynthesize_for_cpu : Kernel.t -> Kernel.tte -> cpu:int -> unit

(** Partial context switch (Table 4, ~3 µs): a synthesized coroutine
    transfer saving only callee-context registers and the stack
    pointer.  [from_cell]/[to_cell] hold the two contexts' stack
    pointers. *)
val synthesize_partial_switch :
  Kernel.t -> name:string -> from_cell:int -> to_cell:int -> int

(** Retune the quantum by patching the immediate in the thread's
    switch-in code (fine-grain scheduling, §4.4). *)
val set_quantum : Kernel.t -> Kernel.tte -> int -> unit
