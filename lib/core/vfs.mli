(** Name space and the open/close/lseek kernel calls (§6.2–6.3).

    [open] finds the named quaject (hashed backwards-stored names),
    asks it to synthesize read/write routines specialized to the
    calling thread, and installs the entry points in the caller's fd
    tables; later reads jump straight into the specialized routine
    through the thread's three-instruction dispatcher. *)

type handlers = {
  h_read : int; (** code address of the synthesized read routine *)
  h_write : int;
  h_pos_cell : int option; (** seek-position cell when seekable *)
  h_close : unit -> unit;
  h_fsync : unit -> unit;
      (** initiate write-back of this open's dirty state (trap 13);
          completions land through the disk interrupt, ordered by the
          submission barrier *)
}

type open_fn = Kernel.tte -> fd:int -> handlers

type t = {
  kernel : Kernel.t;
  names : (string, open_fn) Hashtbl.t; (** keyed by the reversed name *)
  opens : (int * int, handlers) Hashtbl.t; (** (tid, fd) -> handlers *)
  mutable syncs : (unit -> unit) list; (** file-system sync hooks *)
}

(** Install the name space and the trap handlers (open = trap 3,
    close = trap 4, lseek = trap 12, fsync = trap 13, sync = trap 14). *)
val install : Kernel.t -> t

val register : t -> name:string -> open_fn -> unit
val unregister : t -> name:string -> unit
val lookup : t -> string -> open_fn option

(** Register a file-system-wide write-back hook run by [sync]. *)
val on_sync : t -> (unit -> unit) -> unit

(** Run every registered sync hook (what trap 14 does). *)
val sync : t -> unit

(** Host-side equivalents of the system calls (used by servers that
    hand descriptors to other threads, and by tests). *)
val open_named : t -> Kernel.tte -> string -> int option

val close_fd : t -> Kernel.tte -> int -> bool
val fsync_fd : t -> Kernel.tte -> int -> bool
val seek : t -> Kernel.tte -> int -> int -> bool
val free_fd : t -> Kernel.tte -> int option
val install_fd : t -> Kernel.tte -> fd:int -> handlers -> unit
val read_string : Kernel.t -> int -> string option
