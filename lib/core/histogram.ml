(* Log-bucketed mergeable histograms.  Layout: values 0..15 get exact
   buckets; a value with most-significant bit p >= 4 lands in group
   p with 16 sub-buckets of width 2^(p-4), so relative error <= 1/16.
   OCaml ints give p <= 62, hence 16 + 16*59 = 960 buckets. *)

let n_buckets = 960

type t = {
  counts : int array;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable sum : float;
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; vmin = 0; vmax = 0; sum = 0.0 }

let msb v =
  let rec go v p = if v <= 1 then p else go (v lsr 1) (p + 1) in
  go v 0

let index_of v =
  if v < 16 then v
  else
    let p = msb v in
    (16 * (p - 3)) + ((v lsr (p - 4)) land 15)

(* Inverse of [index_of]: the smallest value mapping to bucket [i],
   nudged to the sub-bucket midpoint for wide buckets. *)
let representative i =
  if i < 16 then i
  else
    let p = (i / 16) + 3 in
    let lower = (16 + (i land 15)) lsl (p - 4) in
    let width = 1 lsl (p - 4) in
    lower + (width asr 1)

let sat_add a b = if a > max_int - b then max_int else a + b

let record_n t v n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index_of v in
    t.counts.(i) <- sat_add t.counts.(i) n;
    if t.total = 0 || v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    t.total <- sat_add t.total n;
    t.sum <- t.sum +. (float_of_int v *. float_of_int n)
  end

let record t v = record_n t v 1
let count t = t.total
let min_value t = if t.total = 0 then 0 else t.vmin
let max_value t = if t.total = 0 then 0 else t.vmax
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target = int_of_float (ceil (q *. float_of_int t.total)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 and hit = ref t.vmax in
    (try
       for i = 0 to n_buckets - 1 do
         acc := sat_add !acc t.counts.(i);
         if !acc >= target then begin
           hit := representative i;
           raise Exit
         end
       done
     with Exit -> ());
    let v = !hit in
    if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v
  end

let merge a b =
  let t = create () in
  for i = 0 to n_buckets - 1 do
    t.counts.(i) <- sat_add a.counts.(i) b.counts.(i)
  done;
  t.total <- sat_add a.total b.total;
  t.sum <- a.sum +. b.sum;
  (t.vmin <-
     (match (a.total, b.total) with
     | 0, _ -> b.vmin
     | _, 0 -> a.vmin
     | _ -> min a.vmin b.vmin));
  t.vmax <- max a.vmax b.vmax;
  t

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then out := (representative i, t.counts.(i)) :: !out
  done;
  !out

let equal a b =
  a.total = b.total
  && min_value a = min_value b
  && max_value a = max_value b
  && a.counts = b.counts

let pp fmt t =
  Format.fprintf fmt "n=%d min=%d p50=%d p90=%d p99=%d p999=%d max=%d"
    (count t) (min_value t) (quantile t 0.50) (quantile t 0.90)
    (quantile t 0.99) (quantile t 0.999) (max_value t)
