(** Kernel bring-up: shared handlers (faults, thread-operation system
    calls, signals, alarms), the idle thread, and the name space.
    [go] transfers control to the first ready thread by jumping into
    its synthesized switch-in code.

    The machine halts when the last non-system thread exits. *)

type t = {
  kernel : Kernel.t;
  vfs : Vfs.t;
  idle : Kernel.tte;  (** core 0's idle thread *)
  mutable at_boot : (unit -> unit) list;
}

(** [cores] boots an SMP kernel: every core gets a pinned idle thread
    and, once [go] enters the scheduler, runs its own ready ring
    (secondaries wake via {!Quamachine.Machine.start_core}). *)
val boot :
  ?cost:Quamachine.Cost.t -> ?mem_words:int -> ?cores:int -> unit -> t

(** Stage and wake one secondary core on its ready ring (normally done
    by [go]; exposed for tests and the explorer). *)
val start_secondary : Kernel.t -> int -> unit

(** Register a hook run by the next [go], once the scheduler is
    entered but before user threads get the machine.  Hooks may step
    the machine (synchronous disk reads); file-system recovery — the
    intent-log replay in {!Dfs.mount} — registers itself here so a
    reboot replays before anything can look at the disk.  Hooks run
    once and are cleared; if afterwards no user work remains, [go]
    returns [Halted] cleanly. *)
val at_boot : t -> (unit -> unit) -> unit

(** Run the machine.  A double fault is always logged
    ("double_fault"); with [restart_on_double_fault] the crashed
    thread is restarted through {!Kernel.restart_thread} (bounded by
    {!double_fault_restart_cap}) and the scheduler re-entered instead
    of staying halted. *)
val go :
  ?max_insns:int ->
  ?restart_on_double_fault:bool ->
  t ->
  Quamachine.Machine.run_result

(** Double-fault recoveries one [go] attempts before giving up. *)
val double_fault_restart_cap : int

(** Non-zombie threads. *)
val live_threads : Kernel.t -> Kernel.tte list

(** Are any non-system threads still alive? *)
val work_remaining : Kernel.t -> bool
