(* The executable ready queue (§4.2, Figure 3).

   Ready-to-run threads are chained in a circular queue *of code*: the
   patchable `jmp` instruction ending each thread's context-switch-out
   procedure points at the context-switch-in procedure of the next
   thread.  There is no dispatcher procedure — dispatching *is* the
   data structure.  Inserting or removing a thread is O(1): rewrite
   the `jmp` targets of the affected neighbours.

   The host keeps a doubly-linked mirror ([rq_next]/[rq_prev]) for
   bookkeeping and assertions; the machine only ever follows the
   patched jumps. *)

open Quamachine

(* Entry point of [b] when entered from [a]: control flows to
   sw_in_mmu only when a change of address space is required (§4.2). *)
let entry_from a b =
  if a.Kernel.map_id = b.Kernel.map_id then b.Kernel.sw_in else b.Kernel.sw_in_mmu

(* Point [a]'s switch-out jump at [b] and fix the host mirror. *)
let relink k a b =
  Machine.patch_code k.Kernel.machine a.Kernel.jmp_slot
    (Insn.Jmp (Insn.To_addr (entry_from a b)));
  a.Kernel.rq_next <- Some b;
  b.Kernel.rq_prev <- Some a;
  Kernel.trace k (Ktrace.Patched a.Kernel.jmp_slot);
  Machine.charge k.Kernel.machine 6

let next_exn t =
  match t.Kernel.rq_next with
  | Some n -> n
  | None -> failwith "Ready_queue: thread not linked"

let prev_exn t =
  match t.Kernel.rq_prev with
  | Some p -> p
  | None -> failwith "Ready_queue: thread not linked"

let in_queue t = t.Kernel.rq_next <> None

(* Insert [t] right after [a]. *)
let insert_after k a t =
  if in_queue t then invalid_arg "Ready_queue.insert_after: already queued";
  let b = next_exn a in
  relink k a t;
  relink k t b;
  t.Kernel.state <- Kernel.Ready

(* First insertion into an empty queue: the thread chains to itself. *)
let insert_single k t =
  relink k t t;
  t.Kernel.state <- Kernel.Ready;
  k.Kernel.rq_anchor <- Some t

(* Insert at the "front": immediately after the running thread, so the
   new arrival gets the CPU as soon as the current quantum ends
   (§4.4: unblocked threads go to the front to minimize response
   time). *)
let insert_front k t =
  match k.Kernel.rq_anchor with
  | None -> insert_single k t
  | Some _ ->
    let after =
      match Kernel.current k with
      | Some cur when in_queue cur -> cur
      | _ -> ( match k.Kernel.rq_anchor with Some a -> a | None -> assert false)
    in
    insert_after k after t

let remove k t =
  if not (in_queue t) then invalid_arg "Ready_queue.remove: not queued";
  let p = prev_exn t and n = next_exn t in
  if p == t then begin
    (* last thread leaves: queue becomes empty *)
    k.Kernel.rq_anchor <- None;
    t.Kernel.rq_next <- None;
    t.Kernel.rq_prev <- None
  end
  else begin
    relink k p n;
    (match k.Kernel.rq_anchor with
    | Some a when a == t -> k.Kernel.rq_anchor <- Some n
    | _ -> ());
    (* [t]'s own jmp_slot keeps pointing at [n]: if [t] is currently
       executing, its eventual switch-out still lands in the ring. *)
    t.Kernel.rq_next <- None;
    t.Kernel.rq_prev <- None
  end;
  Machine.charge k.Kernel.machine 4

let to_list k =
  match k.Kernel.rq_anchor with
  | None -> []
  | Some a ->
    let rec go t acc = if t == a && acc <> [] then List.rev acc else go (next_exn t) (t :: acc) in
    go a []

let length k = List.length (to_list k)

(* ------------------------------------------------------------------ *)
(* Idle management.

   The idle thread occupies the ring only when nothing else is ready;
   otherwise every lap of the ring would burn its quantum waiting for
   interrupts.  [balance_idle] enforces that invariant after every
   queue mutation, and when it evicts the idle thread from a CPU it is
   currently holding, it arms the quantum timer to fire immediately —
   "giving [the unblocked thread] immediate access to the CPU" (§4.4). *)

let balance_idle k =
  match k.Kernel.idle_thread with
  | None -> ()
  | Some idle -> (
    match k.Kernel.rq_anchor with
    | None ->
      (* nothing ready at all: the idle thread takes over *)
      insert_single k idle
    | Some _ ->
      let ring = to_list k in
      let others = List.exists (fun t -> not (t == idle)) ring in
      if others && in_queue idle && List.length ring > 1 then begin
        let p = prev_exn idle and n = next_exn idle in
        relink k p n;
        (match k.Kernel.rq_anchor with
        | Some a when a == idle -> k.Kernel.rq_anchor <- Some n
        | _ -> ());
        idle.Kernel.rq_next <- None;
        idle.Kernel.rq_prev <- None;
        (* the evicted idle thread's own switch-out must still land in
           the ring *)
        Machine.patch_code k.Kernel.machine idle.Kernel.jmp_slot
          (Insn.Jmp (Insn.To_addr (entry_from idle n)));
        (* if the idle thread holds the CPU, preempt it now *)
        match Kernel.current k with
        | Some c when c == idle -> Devices.Timer.arm k.Kernel.timer ~us:2.0
        | _ -> ()
      end)

(* Public mutators: perform the raw operation, keep the departing
   thread's switch-out valid, and rebalance the idle thread. *)

let remove k t =
  remove k t;
  balance_idle k;
  (match k.Kernel.rq_anchor with
  | Some a ->
    (* wherever [t]'s in-flight switch-out lands, it must be ready *)
    Machine.patch_code k.Kernel.machine t.Kernel.jmp_slot
      (Insn.Jmp (Insn.To_addr (entry_from t a)))
  | None -> ())

let insert_after k a t =
  insert_after k a t;
  balance_idle k

let insert_front k t =
  insert_front k t;
  balance_idle k

let insert_single k t =
  insert_single k t;
  balance_idle k

(* Structural invariant used by the test suite: the host mirror is a
   consistent cycle and every patched jmp targets the right entry of
   the right successor. *)
let verify k =
  match k.Kernel.rq_anchor with
  | None -> true
  | Some _ ->
    let ring = to_list k in
    List.for_all
      (fun t ->
        let n = next_exn t in
        prev_exn n == t
        &&
        match Machine.read_code k.Kernel.machine t.Kernel.jmp_slot with
        | Insn.Jmp (Insn.To_addr a) -> a = entry_from t n
        | _ -> false)
      ring
