(* The executable ready queue (§4.2, Figure 3).

   Ready-to-run threads are chained in a circular queue *of code*: the
   patchable `jmp` instruction ending each thread's context-switch-out
   procedure points at the context-switch-in procedure of the next
   thread.  There is no dispatcher procedure — dispatching *is* the
   data structure.  Inserting or removing a thread is O(1): rewrite
   the `jmp` targets of the affected neighbours.

   SMP: every core owns one ring, anchored at [Kernel.anchor k cpu];
   a thread lives on the ring of its home core [t.cpu] and all the
   mutators below key off that field.  A one-core kernel has exactly
   the single ring the uniprocessor had.

   The host keeps a doubly-linked mirror ([rq_next]/[rq_prev]) for
   bookkeeping and assertions; the machine only ever follows the
   patched jumps. *)

open Quamachine

(* Entry point of [b] when entered from [a]: control flows to
   sw_in_mmu only when a change of address space is required (§4.2). *)
let entry_from a b =
  if a.Kernel.map_id = b.Kernel.map_id then b.Kernel.sw_in else b.Kernel.sw_in_mmu

(* Point [a]'s switch-out jump at [b] and fix the host mirror.

   Ordering matters (kfault audit): the mirror is updated first and
   the code patch follows back-to-back, with nothing — no cycle
   charging, no tracing — between them.  The old order patched the
   code, then traced and charged cycles, then fixed the mirror, so a
   preemption point landing in between observed an executable chain
   the bookkeeping disagreed with.  Host-side callers are atomic
   w.r.t. machine instructions, so the pair is atomic w.r.t.
   preemption points by construction; the postcondition asserts it. *)
let relink k a b =
  a.Kernel.rq_next <- Some b;
  b.Kernel.rq_prev <- Some a;
  Kernel.patch_code k a.Kernel.jmp_slot
    (Insn.Jmp (Insn.To_addr (entry_from a b)));
  (* patch+mirror consistency: what the machine will execute is what
     the host believes *)
  assert (
    match Machine.read_code k.Kernel.machine a.Kernel.jmp_slot with
    | Insn.Jmp (Insn.To_addr t) -> t = entry_from a b
    | _ -> false);
  Kernel.trace k (Ktrace.Patched a.Kernel.jmp_slot);
  Machine.charge k.Kernel.machine 6

let next_exn t =
  match t.Kernel.rq_next with
  | Some n -> n
  | None -> failwith "Ready_queue: thread not linked"

let prev_exn t =
  match t.Kernel.rq_prev with
  | Some p -> p
  | None -> failwith "Ready_queue: thread not linked"

let in_queue t = t.Kernel.rq_next <> None

(* Insert [t] right after [a] (on [a]'s core's ring).

   The incoming thread's own jmp is patched *first* (kfault audit):
   linking a -> t before t -> b leaves a window where [a]'s switch-out
   jumps into a thread whose switch-out still targets its stale (for a
   fresh thread: the address-0 halt guard) successor.  Patching t -> b
   first keeps the executable chain valid at every intermediate point:
   [t] is simply not yet reachable. *)
let insert_after k a t =
  if in_queue t then invalid_arg "Ready_queue.insert_after: already queued";
  t.Kernel.cpu <- a.Kernel.cpu;
  let b = next_exn a in
  relink k t b;
  relink k a t;
  t.Kernel.state <- Kernel.Ready

(* First insertion into an empty ring: the thread chains to itself. *)
let insert_single k t =
  relink k t t;
  t.Kernel.state <- Kernel.Ready;
  Kernel.set_anchor k t.Kernel.cpu (Some t)

(* Insert at the "front" of [t]'s home ring: immediately after the
   thread running on that core, so the new arrival gets that CPU as
   soon as the current quantum ends (§4.4: unblocked threads go to the
   front to minimize response time). *)
let insert_front k t =
  let cpu = t.Kernel.cpu in
  match Kernel.anchor k cpu with
  | None -> insert_single k t
  | Some a ->
    let after =
      match Kernel.current ~cpu k with
      | Some cur when in_queue cur && cur.Kernel.cpu = cpu -> cur
      | _ -> a
    in
    insert_after k after t

let remove k t =
  if not (in_queue t) then invalid_arg "Ready_queue.remove: not queued";
  let cpu = t.Kernel.cpu in
  let p = prev_exn t and n = next_exn t in
  if p == t then begin
    (* last thread leaves: the ring becomes empty *)
    Kernel.set_anchor k cpu None;
    t.Kernel.rq_next <- None;
    t.Kernel.rq_prev <- None
  end
  else begin
    relink k p n;
    (match Kernel.anchor k cpu with
    | Some a when a == t -> Kernel.set_anchor k cpu (Some n)
    | _ -> ());
    (* [t]'s own jmp_slot keeps pointing at [n]: if [t] is currently
       executing, its eventual switch-out still lands in the ring. *)
    t.Kernel.rq_next <- None;
    t.Kernel.rq_prev <- None
  end;
  Machine.charge k.Kernel.machine 4

(* Bounded ring walk: a corrupted mirror (next chain that never closes
   back on the anchor) must be reported, not spun on forever — the
   explorer calls this as a live invariant. *)
let to_list ?(cpu = 0) k =
  match Kernel.anchor k cpu with
  | None -> []
  | Some a ->
    let bound = Hashtbl.length k.Kernel.threads + 1 in
    let rec go t acc n =
      if t == a && acc <> [] then List.rev acc
      else if n > bound then failwith "Ready_queue: ring does not close"
      else go (next_exn t) (t :: acc) (n + 1)
    in
    go a [] 0

(* Ready threads over every core's ring. *)
let length k =
  let n = ref 0 in
  for c = 0 to Kernel.cores k - 1 do
    n := !n + List.length (to_list ~cpu:c k)
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Idle management.

   A core's idle thread occupies that core's ring only when nothing
   else is ready there; otherwise every lap of the ring would burn its
   quantum waiting for interrupts.  [balance_idle] enforces that
   invariant after every queue mutation, and when it evicts the idle
   thread from a CPU it is currently holding, it arms that core's
   quantum timer to fire immediately — "giving [the unblocked thread]
   immediate access to the CPU" (§4.4). *)

let balance_idle_cpu k cpu =
  match Kernel.idle_of k cpu with
  | None -> ()
  (* a stopped (or destroyed) idle thread must not be re-inserted: the
     pre-fix code put it back Ready and Thread.stop then marked the
     in-ring thread Stopped — a dead thread the executable queue would
     happily dispatch *)
  | Some idle when idle.Kernel.state = Kernel.Stopped || idle.Kernel.state = Kernel.Zombie
    -> ()
  | Some idle -> (
    match Kernel.anchor k cpu with
    | None ->
      (* nothing ready at all on this core: its idle thread takes over *)
      idle.Kernel.cpu <- cpu;
      insert_single k idle
    | Some _ ->
      let ring = to_list ~cpu k in
      let others = List.exists (fun t -> not (t == idle)) ring in
      if others && in_queue idle && idle.Kernel.cpu = cpu && List.length ring > 1
      then begin
        let p = prev_exn idle and n = next_exn idle in
        relink k p n;
        (match Kernel.anchor k cpu with
        | Some a when a == idle -> Kernel.set_anchor k cpu (Some n)
        | _ -> ());
        idle.Kernel.rq_next <- None;
        idle.Kernel.rq_prev <- None;
        (* the evicted idle thread's own switch-out must still land in
           the ring *)
        Kernel.patch_code k idle.Kernel.jmp_slot
          (Insn.Jmp (Insn.To_addr (entry_from idle n)));
        (* if the idle thread holds this CPU, preempt it now *)
        match Kernel.current ~cpu k with
        | Some c when c == idle -> Devices.Timer.arm (Kernel.timer_for k cpu) ~us:2.0
        | _ -> ()
      end)

let balance_idle k =
  for c = 0 to Kernel.cores k - 1 do
    balance_idle_cpu k c
  done

(* Public mutators: perform the raw operation, keep the departing
   thread's switch-out valid, and rebalance the idle threads. *)

let remove k t =
  let cpu = t.Kernel.cpu in
  remove k t;
  balance_idle k;
  (match Kernel.anchor k cpu with
  | Some a ->
    (* wherever [t]'s in-flight switch-out lands, it must be ready *)
    Kernel.patch_code k t.Kernel.jmp_slot
      (Insn.Jmp (Insn.To_addr (entry_from t a)))
  | None -> ())

let insert_after k a t =
  insert_after k a t;
  balance_idle k

let insert_front k t =
  insert_front k t;
  balance_idle k

let insert_single k t =
  insert_single k t;
  balance_idle k

(* Structural invariant used by the test suite and the explorer: on
   every core the host mirror is a consistent cycle (walk bounded — a
   ring that never closes is a corruption verdict, not a hang), every
   patched jmp targets the right entry of the right successor, and
   every ring member's home core agrees with the ring it is on. *)
let verify_cpu k cpu =
  match Kernel.anchor k cpu with
  | None -> true
  | Some a -> (
    in_queue a
    &&
    match to_list ~cpu k with
    | exception Failure _ -> false
    | ring ->
      List.for_all
        (fun t ->
          let n = next_exn t in
          t.Kernel.cpu = cpu
          && prev_exn n == t
          &&
          match Machine.read_code k.Kernel.machine t.Kernel.jmp_slot with
          | Insn.Jmp (Insn.To_addr addr) -> addr = entry_from t n
          | _ -> false)
        ring)

let verify k =
  let ok = ref true in
  for c = 0 to Kernel.cores k - 1 do
    if not (verify_cpu k c) then ok := false
  done;
  !ok
