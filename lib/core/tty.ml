(* The TTY pipeline (§5.1, §5.4).

   raw keyboard server --(dedicated queue)--> cooked filter thread
                                                   |  erase/kill/echo
                                                   v
                                 cooked queue --> /dev/tty readers
   echo + user writes --(optimistic MP-SC queue)--> screen pump --> device

   The raw interrupt handler "simply picks up the character" and puts
   it in a dedicated queue — the kernel knows the handler is the only
   producer and the filter thread the only consumer, so the queue has
   no synchronization code at all (Code Isolation).  The screen queue
   has two producers (echo and user writes), so the interfacer picks
   an optimistic MP-SC queue (§5.1). *)

open Quamachine
module I = Insn
module L = Layout.Tte

type server = {
  srv_raw : Kqueue.t; (* dedicated SP-SC: irq -> filter *)
  srv_cooked : Kqueue.t; (* SP-SC: filter -> readers *)
  srv_screen : Kqueue.t; (* optimistic MP-SC: echo + writes -> pump *)
  srv_lbuf : int; (* line buffer *)
  srv_lbuf_cap : int;
  srv_len_cell : int; (* current line length *)
  srv_fwait : int; (* filter-waiting flag cell *)
  srv_rwait : int; (* reader-waiting flag cell *)
  srv_swait : int; (* screen-pump-waiting flag cell *)
  srv_filter_wq : Kernel.waitq;
  srv_reader_wq : Kernel.waitq;
  srv_pump_wq : Kernel.waitq;
  mutable srv_filter : Kernel.tte option;
  mutable srv_pump : Kernel.tte option;
}

(* Fragment: wake a flagged waiter.  [prefix] keeps labels unique. *)
let wake ~prefix ~flag ~hcall =
  [
    I.Tst (I.Abs flag);
    I.B (I.Eq, I.To_label (prefix ^ "_nowake"));
    I.Move (I.Imm 0, I.Abs flag);
    I.Hcall hcall;
    I.Label (prefix ^ "_nowake");
  ]

(* Fragment: guarded block — set the waiting flag under raised IPL,
   re-check emptiness of [q], and only then sleep; resume at [retry]. *)
let guarded_block k q ~flag ~wq ~retry ~prefix =
  [
    I.Set_ipl 6;
    I.Move (I.Imm 1, I.Abs flag);
    I.Move (I.Abs (Kqueue.head_cell q), I.Reg I.r4);
    I.Cmp (I.Abs (Kqueue.tail_cell q), I.Reg I.r4);
    I.B (I.Ne, I.To_label (prefix ^ "_race"));
  ]
  @ Thread.block_code k wq ~retry
  @ [
      I.Label (prefix ^ "_race");
      I.Move (I.Imm 0, I.Abs flag);
      I.Set_ipl 0;
      I.B (I.Always, I.To_label retry);
    ]

(* ---------------------------------------------------------------- *)
(* The raw TTY interrupt handler (Table 5: "Service raw TTY
   interrupt").  Saves the few registers it uses (§5.3), picks up the
   character, puts it into the dedicated queue and wakes the filter. *)

let irq_template srv =
  Template.make ~name:"tty_irq" ~params:[ "unblock" ] (fun p ->
      [
        (* The dedicated queue's put is lock-free only against its one
           consumer.  The scheduler (timer, level 6) nesting over this
           handler can switch threads mid-put and let a later tty
           interrupt run a complete put first; the suspended put then
           resumes with a stale head and overwrites the newer item.
           Mask the scheduler for the handler body; Rte restores SR. *)
        I.Set_ipl 6;
        I.Push (I.Reg I.r0);
        I.Push (I.Reg I.r1);
        I.Push (I.Reg I.r4);
        I.Push (I.Reg I.r5);
        I.Move (I.Abs Mmio_map.tty_data_in, I.Reg I.r1);
        I.Jsr (I.To_addr srv.srv_raw.Kqueue.q_put); (* dedicated put *)
      ]
      @ wake ~prefix:"irq" ~flag:srv.srv_fwait ~hcall:(p "unblock")
      @ [ I.Pop I.r5; I.Pop I.r4; I.Pop I.r1; I.Pop I.r0; I.Rte ])

(* ---------------------------------------------------------------- *)
(* The cooked filter thread: erase (^H) / kill (^U) processing, echo,
   line flush on newline (the Synthesis equivalent of the UNIX cooked
   tty driver, §5.1). *)

let filter_code k srv ~wake_reader ~wake_pump =
  let screen_put = srv.srv_screen.Kqueue.q_put in
  let cooked_put = srv.srv_cooked.Kqueue.q_put in
  [
    I.Label "retry";
    I.Jsr (I.To_addr srv.srv_raw.Kqueue.q_get);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "wait");
    (* dispatch on the character class — a switch building block *)
    I.Cmp (I.Imm 8, I.Reg I.r1); (* ^H erase *)
    I.B (I.Eq, I.To_label "erase");
    I.Cmp (I.Imm 21, I.Reg I.r1); (* ^U kill *)
    I.B (I.Eq, I.To_label "kill");
    I.Cmp (I.Imm 10, I.Reg I.r1); (* newline *)
    I.B (I.Eq, I.To_label "newline");
    (* ordinary character: append to the line buffer and echo *)
    I.Move (I.Abs srv.srv_len_cell, I.Reg I.r4);
    I.Cmp (I.Imm srv.srv_lbuf_cap, I.Reg I.r4);
    I.B (I.Eq, I.To_label "retry"); (* line full: drop *)
    I.Move (I.Reg I.r4, I.Reg I.r5);
    I.Alu (I.Add, I.Imm srv.srv_lbuf, I.r5);
    I.Move (I.Reg I.r1, I.Ind I.r5);
    I.Alu (I.Add, I.Imm 1, I.r4);
    I.Move (I.Reg I.r4, I.Abs srv.srv_len_cell);
    I.Jsr (I.To_addr screen_put); (* echo *)
  ]
  @ wake ~prefix:"echo" ~flag:srv.srv_swait ~hcall:wake_pump
  @ [
      I.B (I.Always, I.To_label "retry");
      I.Label "erase";
      I.Move (I.Abs srv.srv_len_cell, I.Reg I.r4);
      I.Tst (I.Reg I.r4);
      I.B (I.Eq, I.To_label "retry"); (* nothing to erase *)
      I.Alu (I.Sub, I.Imm 1, I.r4);
      I.Move (I.Reg I.r4, I.Abs srv.srv_len_cell);
      I.Move (I.Imm 8, I.Reg I.r1);
      I.Jsr (I.To_addr screen_put); (* echo the erase *)
    ]
  @ wake ~prefix:"erz" ~flag:srv.srv_swait ~hcall:wake_pump
  @ [
      I.B (I.Always, I.To_label "retry");
      I.Label "kill";
      I.Move (I.Imm 0, I.Abs srv.srv_len_cell);
      I.B (I.Always, I.To_label "retry");
      I.Label "newline";
      (* flush the line plus the newline into the cooked queue *)
      I.Move (I.Imm 0, I.Reg I.r6);
      I.Label "flush";
      I.Cmp (I.Abs srv.srv_len_cell, I.Reg I.r6);
      I.B (I.Eq, I.To_label "flushed");
      I.Move (I.Reg I.r6, I.Reg I.r5);
      I.Alu (I.Add, I.Imm srv.srv_lbuf, I.r5);
      I.Move (I.Ind I.r5, I.Reg I.r1);
      I.Jsr (I.To_addr cooked_put); (* full cooked queue drops *)
      I.Alu (I.Add, I.Imm 1, I.r6);
      I.B (I.Always, I.To_label "flush");
      I.Label "flushed";
      I.Move (I.Imm 10, I.Reg I.r1);
      I.Jsr (I.To_addr cooked_put);
      I.Move (I.Imm 0, I.Abs srv.srv_len_cell);
      I.Move (I.Imm 10, I.Reg I.r1);
      I.Jsr (I.To_addr screen_put); (* echo newline *)
    ]
  @ wake ~prefix:"nl1" ~flag:srv.srv_swait ~hcall:wake_pump
  @ wake ~prefix:"nl2" ~flag:srv.srv_rwait ~hcall:wake_reader
  @ [ I.B (I.Always, I.To_label "retry"); I.Label "wait" ]
  @ guarded_block k srv.srv_raw ~flag:srv.srv_fwait ~wq:srv.srv_filter_wq
      ~retry:"retry" ~prefix:"fw"

(* ---------------------------------------------------------------- *)
(* Screen pump: an active consumer draining the optimistic queue into
   the output device (a pump quaject connecting a passive producer's
   buffer to the passive screen, §5.2). *)

let pump_code k srv =
  [
    I.Label "retry";
    I.Jsr (I.To_addr srv.srv_screen.Kqueue.q_get);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "wait");
    I.Move (I.Reg I.r1, I.Abs Mmio_map.tty_data_out);
    I.B (I.Always, I.To_label "retry");
    I.Label "wait";
  ]
  @ guarded_block k srv.srv_screen ~flag:srv.srv_swait ~wq:srv.srv_pump_wq
      ~retry:"retry" ~prefix:"pw"

(* ---------------------------------------------------------------- *)
(* /dev/tty: synthesized per-open read (from the cooked queue) and
   write (into the screen queue). *)

let tty_read_template k srv ~gauge =
  Template.make ~name:"tty_read" ~params:[] (fun _ ->
      [
        I.Alu_mem (I.Add, I.Imm 1, I.Abs gauge);
        I.Move (I.Imm 0, I.Reg I.r8); (* words read so far *)
        I.Label "retry";
        I.Jsr (I.To_addr srv.srv_cooked.Kqueue.q_get);
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "drained");
        I.Move (I.Reg I.r1, I.Post_inc I.r2);
        I.Alu (I.Add, I.Imm 1, I.r8);
        I.Cmp (I.Reg I.r3, I.Reg I.r8); (* read - wanted *)
        I.B (I.Cs, I.To_label "retry"); (* read < wanted *)
        I.Move (I.Reg I.r8, I.Reg I.r0);
        I.Rte;
        I.Label "drained";
        I.Tst (I.Reg I.r8);
        I.B (I.Eq, I.To_label "block"); (* nothing yet: wait for input *)
        I.Move (I.Reg I.r8, I.Reg I.r0); (* return the partial line *)
        I.Rte;
        I.Label "block";
      ]
      @ guarded_block k srv.srv_cooked ~flag:srv.srv_rwait ~wq:srv.srv_reader_wq
          ~retry:"retry" ~prefix:"tr")

let tty_write_template srv ~gauge ~wake_pump =
  Template.make ~name:"tty_write" ~params:[] (fun _ ->
      [
        I.Alu_mem (I.Add, I.Imm 1, I.Abs gauge);
        I.Move (I.Reg I.r3, I.Reg I.r0); (* return n *)
        I.Move (I.Reg I.r3, I.Reg I.r8);
        I.Tst (I.Reg I.r8);
        I.B (I.Eq, I.To_label "out");
        I.Label "next";
        I.Move (I.Post_inc I.r2, I.Reg I.r1);
        I.Label "again";
        I.Jsr (I.To_addr srv.srv_screen.Kqueue.q_put);
        I.Tst (I.Reg I.r0);
        I.B (I.Ne, I.To_label "stored");
        (* screen queue full: let the pump run, then retry this char *)
        I.Trap 5; (* yield *)
        I.B (I.Always, I.To_label "again");
        I.Label "stored";
      ]
      @ wake ~prefix:"tw" ~flag:srv.srv_swait ~hcall:wake_pump
      @ [
          I.Alu (I.Sub, I.Imm 1, I.r8);
          I.B (I.Ne, I.To_label "next");
          I.Move (I.Reg I.r3, I.Reg I.r0); (* r0 clobbered by q_put *)
          I.Label "out";
          I.Rte;
        ])

(* ---------------------------------------------------------------- *)

let install vfs =
  let k = vfs.Vfs.kernel in
  let alloc = k.Kernel.alloc in
  let lbuf_cap = 128 in
  (* queues and cells first; the service threads that animate them are
     created afterwards *)
  let srv =
    {
      srv_raw = Kqueue.create ~kind:Kqueue.Spsc k ~name:"tty/rawq" ~size:64;
      srv_cooked = Kqueue.create ~kind:Kqueue.Spsc k ~name:"tty/cookedq" ~size:512;
      srv_screen =
        Kqueue.create ~producers:2 k ~name:"tty/screenq" ~size:1024;
      srv_lbuf = Kalloc.alloc_zeroed alloc lbuf_cap;
      srv_lbuf_cap = lbuf_cap;
      srv_len_cell = Kalloc.alloc_zeroed alloc 16;
      srv_fwait = Kalloc.alloc_zeroed alloc 16;
      srv_rwait = Kalloc.alloc_zeroed alloc 16;
      srv_swait = Kalloc.alloc_zeroed alloc 16;
      srv_filter_wq = Kernel.waitq ~name:"tty/filter";
      srv_reader_wq = Kernel.waitq ~name:"tty/readers";
      srv_pump_wq = Kernel.waitq ~name:"tty/pump";
      srv_filter = None;
      srv_pump = None;
    }
  in
  let wake_reader = Thread.unblock_hcall k srv.srv_reader_wq in
  let wake_pump = Thread.unblock_hcall k srv.srv_pump_wq in
  let wake_filter = Thread.unblock_hcall k srv.srv_filter_wq in
  (* the filter and pump service threads (run in supervisor state) *)
  let filter_entry, _ =
    Ksynth.install k ~name:"tty/filter"
      (filter_code k srv ~wake_reader ~wake_pump)
  in
  let pump_entry, _ = Ksynth.install k ~name:"tty/pump" (pump_code k srv) in
  let mk_system entry =
    let t = Thread.create k ~quantum_us:300 ~system:true ~entry () in
    Machine.poke k.Kernel.machine (t.Kernel.base + L.off_regs + 16) Ctx.kernel_sr;
    t
  in
  srv.srv_filter <- Some (mk_system filter_entry);
  srv.srv_pump <- Some (mk_system pump_entry);
  (* the raw interrupt handler, shared by every thread's vector table *)
  let irq =
    Ksynth.entry
      (Ksynth.instantiate k ~name:"tty/irq" ~template:(irq_template srv)
         ~invariants:[ ("unblock", wake_filter) ])
  in
  Kernel.set_vector_all k Mmio_map.tty_vector irq;
  (* the /dev/tty node: open synthesizes reader/writer code (the extra
     ~19 us over /dev/null in Table 2) *)
  Vfs.register vfs ~name:"/dev/tty" (fun tte ~fd ->
      let gauge = tte.Kernel.base + L.off_gauge in
      let tag = Printf.sprintf "open/t%d/fd%d/tty" tte.Kernel.tid fd in
      let r =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/read")
             ~template:(tty_read_template k srv ~gauge) ~invariants:[])
      in
      let w =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/write")
             ~template:(tty_write_template srv ~gauge ~wake_pump) ~invariants:[])
      in
      {
        Vfs.h_read = r;
        h_write = w;
        h_pos_cell = None;
        h_close =
          (fun () ->
            Ksynth.release_entry k r;
            Ksynth.release_entry k w);
        h_fsync = (fun () -> ()); (* character device: nothing to write back *)
      });
  srv
