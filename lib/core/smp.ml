(* SMP load balancing: thread migration and work stealing.

   A thread's home core is baked into its synthesized switch code (the
   per-core current-thread cells and the quantum-timer register are
   invariants), so migration is resynthesis: pull the TTE off its old
   ring, rebuild the switch code with the destination core's
   invariants (a synthesis-cache hit when a same-shape thread migrated
   this way before), and splice it into the new ring.

   The dispatch guard is the subtle part.  A ready thread is *not*
   stealable while its home core is dispatching it: if that core's PC
   is inside the thread's own synthesized pages (switch-out half done,
   registers half-saved) or the thread is the core's current one, its
   context is split between the TTE and that core's registers, and
   moving the TTE corrupts it.  The explorer's smp sabotage mode
   disables this guard to prove the invariants catch the corruption. *)

open Quamachine

(* Sabotage lever (tests/explorer only): skip the dispatch guard. *)
let unsafe_skip_guard = ref false

(* Is [t]'s home core executing inside one of [t]'s own synthesized
   pages (switch code, dispatchers) right now? *)
let mid_dispatch k (t : Kernel.tte) =
  let pc = Machine.core_pc k.Kernel.machine t.Kernel.cpu in
  match Hashtbl.find_opt k.Kernel.page_index pc with
  | Some p -> List.mem p.Kernel.sp_entry t.Kernel.owned_pages
  | None -> false

(* May [t] be pulled off its home ring right now? *)
let stealable k (t : Kernel.tte) =
  t.Kernel.state = Kernel.Ready
  && Ready_queue.in_queue t
  && (not (Kernel.is_idle k t))
  && (!unsafe_skip_guard
     ||
     ((match Kernel.current ~cpu:t.Kernel.cpu k with
      | Some c -> not (c == t)
      | None -> true)
     && not (mid_dispatch k t)))

(* Move [t] to [cpu]: off the old ring, switch code resynthesized with
   the new core's invariants, onto the new ring (front — it is as
   fresh an arrival there as an unblocked thread).  [false] if the
   dispatch guard refuses.  Idle threads are pinned. *)
let migrate k (t : Kernel.tte) ~cpu =
  if cpu < 0 || cpu >= Kernel.cores k then invalid_arg "Smp.migrate: bad cpu";
  if Kernel.is_idle k t then invalid_arg "Smp.migrate: idle threads are pinned";
  if t.Kernel.cpu = cpu then true
  else if not (stealable k t) then false
  else begin
    Ready_queue.remove k t;
    Ctx.resynthesize_for_cpu k t ~cpu;
    Ready_queue.insert_front k t;
    Metrics.bump k.Kernel.metrics "smp.migrations_total";
    (* ring unlink + relink bookkeeping beyond the synthesis cost *)
    Machine.charge k.Kernel.machine 40;
    true
  end

(* Non-idle ready threads on core [c]'s ring. *)
let load k c =
  List.length
    (List.filter
       (fun t -> not (Kernel.is_idle k t))
       (Ready_queue.to_list ~cpu:c k))

(* Steal one thread for [thief]: victim is the other core with the
   most non-idle ready threads (at least 2, so stealing never leaves a
   core with work worse off than the thief), first stealable thread
   walking the victim ring from its anchor. *)
let steal k ~thief =
  let victim = ref (-1) and best = ref 1 in
  for c = 0 to Kernel.cores k - 1 do
    if c <> thief then begin
      let l = load k c in
      if l > !best then begin
        victim := c;
        best := l
      end
    end
  done;
  if !victim < 0 then None
  else
    let ring = Ready_queue.to_list ~cpu:!victim k in
    match List.find_opt (fun t -> stealable k t) ring with
    | None -> None
    | Some t ->
      if migrate k t ~cpu:thief then begin
        Metrics.bump k.Kernel.metrics "smp.steals_total";
        Some t
      end
      else None

(* Periodic stealer for one core: when [cpu]'s ring holds no real
   work, try to steal some.  Runs as a machine device (host-side, like
   an inter-processor scheduling interrupt's top half). *)
let install_stealer k ~cpu ?(period_us = 500) () =
  let m = k.Kernel.machine in
  let period () = Cost.cycles_of_us (Machine.cost_model m) (float_of_int period_us) in
  let dev =
    Machine.add_device m
      ~name:(Printf.sprintf "stealer%d" cpu)
      ~due:(Machine.cycles m + period ())
      ~tick:(fun _ -> ())
  in
  dev.Machine.dev_tick <-
    (fun m ->
      if load k cpu = 0 then ignore (steal k ~thief:cpu);
      Machine.device_schedule m dev (Machine.cycles m + period ()));
  dev

let migrations k = Metrics.counter_value (Metrics.counter k.Kernel.metrics "smp.migrations_total")
let steals k = Metrics.counter_value (Metrics.counter k.Kernel.metrics "smp.steals_total")
