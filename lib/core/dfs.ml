(* The disk-backed file system: files live in contiguous block runs on
   the disk device and are read through the §5.1 pipeline — disk
   scheduler, buffer cache, blocking threads.

   Layout on disk: block 0 is the superblock directory —
     [0] magic, [1] file count, then per file 16 words:
     14 name words (NUL-terminated), start block, length in words.

   `open` synthesizes a per-open read routine whose fast path is a
   host call that copies from cached blocks (charged per word); when a
   block is missing the call schedules the read and the routine blocks
   on the mount's wait queue, retrying when the completion interrupt
   wakes it.  The measured file system of the paper's evaluation is
   the memory-resident [Fs]; this one exercises the full device
   pipeline. *)

open Quamachine
module I = Insn
module L = Layout.Tte

let magic = 0xD15C
let dirent_words = 16
let max_name = 13

type dfs_file = { df_name : string; df_start : int; df_words : int }

type t = {
  dfs_ds : Disk_server.t;
  dfs_wq : Kernel.waitq; (* one mount-wide completion wait queue *)
  dfs_files : dfs_file list;
}

(* ---------------------------------------------------------------- *)
(* Formatting: write a directory and file contents to the raw device
   (host-side, like a mkfs run before boot). *)

let format k ~files =
  let disk = k.Kernel.disk in
  let bw = Disk_server.block_words in
  let dir = Array.make bw 0 in
  dir.(0) <- magic;
  dir.(1) <- List.length files;
  let next_block = ref 1 in
  List.iteri
    (fun i (name, content) ->
      if String.length name > max_name then invalid_arg "Dfs.format: name too long";
      if 2 + ((i + 1) * dirent_words) > bw then invalid_arg "Dfs.format: too many files";
      let e = 2 + (i * dirent_words) in
      String.iteri (fun j c -> dir.(e + j) <- Char.code c) name;
      dir.(e + String.length name) <- 0;
      dir.(e + 14) <- !next_block;
      dir.(e + 15) <- Array.length content;
      (* body, one block run *)
      let blocks = (Array.length content + bw - 1) / bw in
      for b = 0 to blocks - 1 do
        let chunk =
          Array.init bw (fun j ->
              let idx = (b * bw) + j in
              if idx < Array.length content then content.(idx) else 0)
        in
        Devices.Disk.write_block disk (!next_block + b) chunk
      done;
      next_block := !next_block + blocks)
    files;
  Devices.Disk.write_block disk 0 dir

(* ---------------------------------------------------------------- *)
(* Mounting: read the directory through the cache (synchronously, at
   boot) and register every file in the name space. *)

let read_template mount_hcall k dfs =
  Template.make ~name:"dfs_read" ~params:[ "gauge" ] (fun p ->
      [
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "gauge"));
        I.Label "retry";
        I.Hcall mount_hcall;
        (* host sets r4 = 1 when the transfer finished (r0 = words
           read) and r4 = 0 when blocks are still on their way *)
        I.Tst (I.Reg I.r4);
        I.B (I.Ne, I.To_label "done");
      ]
      @ Thread.block_code k dfs.dfs_wq ~retry:"retry"
      @ [ I.Label "done"; I.Rte ])

(* Mounting requires a live machine context (the superblock read
   completes through the disk interrupt): start the kernel — at least
   the idle thread — before calling this. *)
let mount vfs ds =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  (* read the superblock synchronously at mount time *)
  let dirbuf =
    match Disk_server.read_block_sync ds 0 ~max_insns:50_000_000 with
    | Some buf -> buf
    | None -> failwith "Dfs.mount: cannot read the superblock"
  in
  if Machine.peek m dirbuf <> magic then failwith "Dfs.mount: bad magic";
  let count = Machine.peek m (dirbuf + 1) in
  let files =
    List.init count (fun i ->
        let e = dirbuf + 2 + (i * dirent_words) in
        let rec name_of j acc =
          if j >= max_name then acc
          else
            let c = Machine.peek m (e + j) in
            if c = 0 then acc else name_of (j + 1) (acc ^ String.make 1 (Char.chr c))
        in
        {
          df_name = name_of 0 "";
          df_start = Machine.peek m (e + 14);
          df_words = Machine.peek m (e + 15);
        })
  in
  let dfs = { dfs_ds = ds; dfs_wq = Kernel.waitq ~name:"dfs/mount"; dfs_files = files } in
  (* register every file *)
  List.iter
    (fun f ->
      Vfs.register vfs ~name:("/disk/" ^ f.df_name) (fun tte ~fd ->
          let pos_cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
          let gauge = tte.Kernel.base + L.off_gauge in
          let bw = Disk_server.block_words in
          (* the per-open read service: copy what the cache holds,
             schedule what it doesn't *)
          let hcall =
            Machine.register_hcall m (fun m ->
                let dst = Machine.get_reg m I.r2 in
                let want = Machine.get_reg m I.r3 in
                let pos = Machine.peek m pos_cell in
                let n = min want (max 0 (f.df_words - pos)) in
                if n = 0 then begin
                  Machine.set_reg m I.r0 0;
                  Machine.set_reg m I.r4 1
                end
                else begin
                  (* are all covered blocks resident? *)
                  let b0 = f.df_start + (pos / bw) in
                  let b1 = f.df_start + ((pos + n - 1) / bw) in
                  let missing = ref false in
                  for b = b0 to b1 do
                    match Disk_server.get_block ds ~waitq:dfs.dfs_wq b with
                    | _, Some _ -> missing := true
                    | _, None -> ()
                  done;
                  if !missing then Machine.set_reg m I.r4 0
                  else begin
                    for i = 0 to n - 1 do
                      let off = pos + i in
                      let buf, _ =
                        Disk_server.get_block ds ~waitq:dfs.dfs_wq
                          (f.df_start + (off / bw))
                      in
                      Machine.poke m (dst + i) (Machine.peek m (buf + (off mod bw)))
                    done;
                    Machine.charge_refs m (2 * n);
                    Machine.poke m pos_cell (pos + n);
                    Machine.set_reg m I.r0 n;
                    Machine.set_reg m I.r4 1
                  end
                end)
          in
          let tag = Printf.sprintf "dfs/t%d/fd%d/%s" tte.Kernel.tid fd f.df_name in
          let h =
            Ksynth.instantiate k ~name:(tag ^ "/read")
              ~template:(read_template hcall k dfs)
              ~invariants:[ ("gauge", gauge) ]
          in
          let r = Ksynth.entry h in
          let bad = Ksynth.lookup k "bad_fd" in
          {
            Vfs.h_read = r;
            h_write = bad; (* read-only file system *)
            h_pos_cell = Some pos_cell;
            h_close =
              (fun () ->
                Ksynth.release_entry k r;
                Kalloc.free k.Kernel.alloc pos_cell);
          }))
    files;
  dfs

let files t = t.dfs_files
