(* The disk-backed file system: files live in contiguous block runs on
   the disk device and are read through the §5.1 pipeline — disk
   scheduler, buffer cache, blocking threads.  Since kcrash it is also
   writable from the host side (create/append/rename/replace), with
   power-cut crash consistency:

   Layout on disk:
     block 0  superblock directory —
              [0] magic, [1] file count, then per file 16 words:
              name words 0..12 (NUL-terminated), [13] capacity in
              blocks, [14] start block, [15] length in words
     block 1  intent-log header — [0] log magic, [1] state
              (0 = clear, 1 = intent recorded)
     block 2  intent-log shadow — the full post-op directory image
     block 3+ file data, contiguous runs

   Crash consistency is two mechanisms, separately disableable so the
   crash-point explorer can demonstrate what each one buys:

   - Write ordering ([m_barriers]): data write-backs are flushed and
     fenced with a disk-server barrier *before* the metadata that
     names them is submitted, so the elevator can never commit a new
     length or name ahead of the data.  Without it, every transfer of
     an operation enters the elevator unordered (and data sits dirty
     in the cache until `sync`) — the classic garbage-past-old-size /
     zero-length-rename crash bugs.

   - Intent log ([m_journal]): every directory update is journaled
     first — shadow image, then header state=1, then the directory
     block itself, then header state=0, each step behind a barrier
     (append record → barrier → apply → commit).  Boot-time recovery
     replays the shadow when the header says an intent was recorded,
     making torn directory writes atomic.  Without it the directory
     block is written in place and a power cut can tear it.

   `open` synthesizes a per-open read routine whose fast path is a
   host call that copies from cached blocks (charged per word); when a
   block is missing the call schedules the read and the routine blocks
   on the mount's wait queue, retrying when the completion interrupt
   wakes it.  Re-opens after a crash+reboot resynthesize those fast
   paths from the same Ksynth recipes. *)

open Quamachine
module I = Insn
module L = Layout.Tte

let magic = 0xD15C
let log_magic = 0x10C0
let dirent_words = 16
let max_name = 12
let dir_block = 0
let log_header_block = 1
let log_shadow_block = 2
let data_start = 3

type dfs_file = {
  df_name : string;
  df_slot : int;
  mutable df_start : int;
  mutable df_cap : int; (* capacity in blocks *)
  mutable df_words : int; (* current length in words *)
}

type mechanisms = { m_barriers : bool; m_journal : bool }

let all_mechanisms = { m_barriers = true; m_journal = true }

type t = {
  dfs_ds : Disk_server.t;
  dfs_vfs : Vfs.t;
  dfs_wq : Kernel.waitq; (* one mount-wide completion wait queue *)
  dfs_mech : mechanisms;
  dfs_dir : dfs_file option array; (* host mirror of the directory *)
  dfs_dirbuf : int; (* dedicated directory image buffer (not a cache slot) *)
  dfs_js : int; (* log shadow write buffer *)
  dfs_jh_set : int; (* header image with state=1 *)
  dfs_jh_clear : int; (* header image with state=0 *)
  dfs_budget : int; (* max_insns for synchronous waits *)
}

let bw = Disk_server.block_words
let max_slots = (bw - 2) / dirent_words

(* ---------------------------------------------------------------- *)
(* Formatting: write a directory, a cleared intent log and file
   contents to the raw device (host-side, like a mkfs run before
   boot).  [capacities] overrides the block run reserved for a file
   (in blocks) so later appends have room to grow. *)

let format k ?(capacities = []) ~files () =
  let disk = k.Kernel.disk in
  let dir = Array.make bw 0 in
  dir.(0) <- magic;
  dir.(1) <- List.length files;
  let next_block = ref data_start in
  List.iteri
    (fun i (name, content) ->
      if String.length name > max_name then invalid_arg "Dfs.format: name too long";
      if i >= max_slots then invalid_arg "Dfs.format: too many files";
      let e = 2 + (i * dirent_words) in
      String.iteri (fun j c -> dir.(e + j) <- Char.code c) name;
      dir.(e + String.length name) <- 0;
      let needed = max 1 ((Array.length content + bw - 1) / bw) in
      let cap =
        match List.assoc_opt name capacities with
        | Some c -> max c needed
        | None -> needed
      in
      dir.(e + 13) <- cap;
      dir.(e + 14) <- !next_block;
      dir.(e + 15) <- Array.length content;
      (* body, one block run *)
      for b = 0 to needed - 1 do
        let chunk =
          Array.init bw (fun j ->
              let idx = (b * bw) + j in
              if idx < Array.length content then content.(idx) else 0)
        in
        Devices.Disk.write_block disk (!next_block + b) chunk
      done;
      next_block := !next_block + cap)
    files;
  let header = Array.make bw 0 in
  header.(0) <- log_magic;
  header.(1) <- 0;
  Devices.Disk.write_block disk log_header_block header;
  Devices.Disk.write_block disk dir_block dir

(* ---------------------------------------------------------------- *)
(* Small host-side helpers over the machine *)

let copy_buf m ~src ~dst =
  for i = 0 to bw - 1 do
    Machine.poke m (dst + i) (Machine.peek m (src + i))
  done;
  Machine.charge_refs m (2 * bw)

(* Await the whole pipeline (queued requests, active transfer,
   write-backs): the synchronous edge of every safe-mode operation. *)
let drain t = ignore (Disk_server.drain t.dfs_ds ~max_insns:t.dfs_budget)

let submit_write t ~block ~buffer =
  ignore
    (Disk_server.submit t.dfs_ds ~waitq:t.dfs_wq ~block ~buffer ~write:true ())

let fence t = if t.dfs_mech.m_barriers then Disk_server.barrier t.dfs_ds

(* ---------------------------------------------------------------- *)
(* Directory image <-> host mirror *)

let write_dirent t slot =
  let m = (t.dfs_vfs.Vfs.kernel).Kernel.machine in
  let e = t.dfs_dirbuf + 2 + (slot * dirent_words) in
  (match t.dfs_dir.(slot) with
  | None ->
    for j = 0 to dirent_words - 1 do
      Machine.poke m (e + j) 0
    done
  | Some f ->
    for j = 0 to max_name do
      Machine.poke m (e + j) 0
    done;
    String.iteri (fun j c -> Machine.poke m (e + j) (Char.code c)) f.df_name;
    Machine.poke m (e + 13) f.df_cap;
    Machine.poke m (e + 14) f.df_start;
    Machine.poke m (e + 15) f.df_words);
  Machine.charge_refs m dirent_words

let write_count t =
  let m = (t.dfs_vfs.Vfs.kernel).Kernel.machine in
  let n =
    Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 t.dfs_dir
  in
  Machine.poke m (t.dfs_dirbuf + 1) n;
  Machine.charge_refs m 1

(* Commit the updated directory image.  Journaled: append the intent
   record (shadow image + header state=1), barrier, apply (directory
   write), barrier, commit (header state=0) — all asynchronous, with
   epochs keeping the elevator honest.  Unjournaled: write the
   directory block in place.  In safe mode the operation then waits
   for the pipeline to drain so the shared buffers can be reused. *)
let commit_dir t =
  let k = t.dfs_vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  if t.dfs_mech.m_journal then begin
    copy_buf m ~src:t.dfs_dirbuf ~dst:t.dfs_js;
    submit_write t ~block:log_shadow_block ~buffer:t.dfs_js;
    fence t;
    submit_write t ~block:log_header_block ~buffer:t.dfs_jh_set;
    fence t;
    submit_write t ~block:dir_block ~buffer:t.dfs_dirbuf;
    fence t;
    submit_write t ~block:log_header_block ~buffer:t.dfs_jh_clear;
    Metrics.bump k.Kernel.metrics "dfs.journal_records"
  end
  else submit_write t ~block:dir_block ~buffer:t.dfs_dirbuf;
  if t.dfs_mech.m_barriers then drain t

(* ---------------------------------------------------------------- *)
(* Lookup and allocation *)

let find t name =
  let r = ref None in
  Array.iter
    (function Some f when f.df_name = name -> r := Some f | _ -> ())
    t.dfs_dir;
  !r

let free_slot t =
  let r = ref None in
  Array.iteri (fun i s -> if s = None && !r = None then r := Some i) t.dfs_dir;
  !r

(* Bump allocation: the run after the highest allocated block.  Freed
   runs (replace, rename-over) are leaked — there is no free map; the
   disk is large and crash runs are short. *)
let alloc_run t =
  Array.fold_left
    (fun acc s ->
      match s with Some f -> max acc (f.df_start + f.df_cap) | None -> acc)
    data_start t.dfs_dir

(* ---------------------------------------------------------------- *)
(* Data path *)

(* Write [data] into the file's blocks starting at word offset [at]:
   affected blocks are brought into the cache, patched and marked
   dirty.  Safe mode then flushes the dirty blocks and fences, so the
   data is ordered ahead of any metadata that will name it; unsafe
   mode leaves them dirty in the cache until someone syncs. *)
let write_words t f ~at data =
  let ds = t.dfs_ds in
  let m = (t.dfs_vfs.Vfs.kernel).Kernel.machine in
  let n = Array.length data in
  if n > 0 then begin
    if at + n > f.df_cap * bw then invalid_arg "Dfs.write_words: run overflow";
    let b0 = at / bw and b1 = (at + n - 1) / bw in
    for b = b0 to b1 do
      match Disk_server.read_block_sync ds (f.df_start + b) ~max_insns:t.dfs_budget with
      | None -> failwith "Dfs.write_words: block read failed"
      | Some buf ->
        let lo = max at (b * bw) and hi = min (at + n) ((b + 1) * bw) in
        for off = lo to hi - 1 do
          Machine.poke m (buf + (off mod bw)) data.(off - at)
        done;
        Machine.charge_refs m (hi - lo);
        Disk_server.mark_dirty ds (f.df_start + b)
    done;
    if t.dfs_mech.m_barriers then begin
      ignore (Disk_server.flush ds ());
      Disk_server.barrier ds
    end
  end

(* ---------------------------------------------------------------- *)
(* Synthesized read path (unchanged shape since the read-only dfs):
   the per-open fast path copies from cached blocks and blocks the
   thread on the mount wait queue while a fill is in flight. *)

let read_template mount_hcall k dfs =
  Template.make ~name:"dfs_read" ~params:[ "gauge" ] (fun p ->
      [
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "gauge"));
        I.Label "retry";
        I.Hcall mount_hcall;
        (* host sets r4 = 1 when the transfer finished (r0 = words
           read) and r4 = 0 when blocks are still on their way *)
        I.Tst (I.Reg I.r4);
        I.B (I.Ne, I.To_label "done");
      ]
      @ Thread.block_code k dfs.dfs_wq ~retry:"retry"
      @ [ I.Label "done"; I.Rte ])

let register_file t slot =
  let vfs = t.dfs_vfs in
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  let ds = t.dfs_ds in
  let name =
    match t.dfs_dir.(slot) with
    | Some f -> f.df_name
    | None -> invalid_arg "Dfs.register_file: empty slot"
  in
  Vfs.register vfs ~name:("/disk/" ^ name) (fun tte ~fd ->
      let pos_cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
      let gauge = tte.Kernel.base + L.off_gauge in
      (* the per-open read service: copy what the cache holds,
         schedule what it doesn't.  The dirent is read through the
         slot on every call, so renames and replaces are visible to
         already-open descriptors. *)
      let hcall =
        Machine.register_hcall m (fun m ->
            match t.dfs_dir.(slot) with
            | None ->
              Machine.set_reg m I.r0 (-1);
              Machine.set_reg m I.r4 1
            | Some f ->
              let dst = Machine.get_reg m I.r2 in
              let want = Machine.get_reg m I.r3 in
              let pos = Machine.peek m pos_cell in
              let n = min want (max 0 (f.df_words - pos)) in
              if n = 0 then begin
                Machine.set_reg m I.r0 0;
                Machine.set_reg m I.r4 1
              end
              else begin
                (* are all covered blocks resident? *)
                let b0 = f.df_start + (pos / bw) in
                let b1 = f.df_start + ((pos + n - 1) / bw) in
                let missing = ref false in
                for b = b0 to b1 do
                  match Disk_server.get_block ds ~waitq:t.dfs_wq b with
                  | _, Some _ -> missing := true
                  | _, None -> ()
                done;
                if !missing then Machine.set_reg m I.r4 0
                else begin
                  for i = 0 to n - 1 do
                    let off = pos + i in
                    let buf, _ =
                      Disk_server.get_block ds ~waitq:t.dfs_wq
                        (f.df_start + (off / bw))
                    in
                    Machine.poke m (dst + i) (Machine.peek m (buf + (off mod bw)))
                  done;
                  Machine.charge_refs m (2 * n);
                  Machine.poke m pos_cell (pos + n);
                  Machine.set_reg m I.r0 n;
                  Machine.set_reg m I.r4 1
                end
              end)
      in
      let tag = Printf.sprintf "dfs/t%d/fd%d/%s" tte.Kernel.tid fd name in
      let h =
        Ksynth.instantiate k ~name:(tag ^ "/read")
          ~template:(read_template hcall k t)
          ~invariants:[ ("gauge", gauge) ]
      in
      let r = Ksynth.entry h in
      let bad = Ksynth.lookup k "bad_fd" in
      {
        Vfs.h_read = r;
        h_write = bad; (* thread writes go through the host metadata ops *)
        h_pos_cell = Some pos_cell;
        h_close =
          (fun () ->
            Ksynth.release_entry k r;
            Kalloc.free k.Kernel.alloc pos_cell);
        h_fsync =
          (fun () ->
            (* initiate write-back of the dirty blocks, fenced so
               later writes cannot pass them; the completions land
               through the disk interrupt as the caller keeps running *)
            ignore (Disk_server.flush ds ~barrier:true ()));
      })

(* ---------------------------------------------------------------- *)
(* Recovery: boot-time intent-log replay.  Runs before the directory
   is believed; called from [mount] (and through [Boot.at_boot] on
   reboot paths). *)

let recover ?(budget = 50_000_000) vfs ds =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  match Disk_server.read_block_sync ds log_header_block ~max_insns:budget with
  | None -> failwith "Dfs.recover: cannot read the log header"
  | Some hbuf ->
    if Machine.peek m hbuf <> log_magic then
      (* no recognizable intent log (pre-journal image): nothing to
         replay and nothing to trust — leave the image alone *)
      false
    else if Machine.peek m (hbuf + 1) <> 1 then false
    else begin
      (* an intent was recorded but never committed: replay the
         shadow directory image (redo), then clear the intent.  The
         shadow was fenced ahead of the header write, so state=1
         guarantees it is whole. *)
      match Disk_server.read_block_sync ds log_shadow_block ~max_insns:budget with
      | None -> failwith "Dfs.recover: cannot read the log shadow"
      | Some sbuf ->
        ignore
          (Disk_server.submit ds ~block:dir_block ~buffer:sbuf ~write:true ());
        Disk_server.barrier ds;
        Machine.poke m (hbuf + 1) 0;
        Machine.charge_refs m 1;
        ignore
          (Disk_server.submit ds ~block:log_header_block ~buffer:hbuf
             ~write:true ());
        if not (Disk_server.drain ds ~max_insns:budget) then
          failwith "Dfs.recover: replay did not drain";
        Metrics.bump k.Kernel.metrics "dfs.replays";
        true
    end

(* ---------------------------------------------------------------- *)
(* Mounting: recover, then read the directory through the cache
   (synchronously, at boot) and register every file in the name
   space.  Requires a live machine context (reads complete through
   the disk interrupt): start the kernel — at least the idle thread —
   before calling this. *)

let mount ?(mechanisms = all_mechanisms) ?(budget = 50_000_000) vfs ds =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  Metrics.bump k.Kernel.metrics "dfs.recoveries";
  ignore (recover ~budget vfs ds);
  (* read the superblock synchronously at mount time *)
  let dirbuf_cache =
    match Disk_server.read_block_sync ds dir_block ~max_insns:budget with
    | Some buf -> buf
    | None -> failwith "Dfs.mount: cannot read the superblock"
  in
  if Machine.peek m dirbuf_cache <> magic then failwith "Dfs.mount: bad magic";
  (* the directory lives in a dedicated buffer for the mount's
     lifetime: journal shadows and asynchronous directory writes DMA
     from it, so it must never be evicted under them *)
  let dirbuf = Kalloc.alloc_zeroed k.Kernel.alloc bw in
  copy_buf m ~src:dirbuf_cache ~dst:dirbuf;
  let js = Kalloc.alloc_zeroed k.Kernel.alloc bw in
  let jh_set = Kalloc.alloc_zeroed k.Kernel.alloc bw in
  let jh_clear = Kalloc.alloc_zeroed k.Kernel.alloc bw in
  Machine.poke m jh_set log_magic;
  Machine.poke m (jh_set + 1) 1;
  Machine.poke m jh_clear log_magic;
  Machine.poke m (jh_clear + 1) 0;
  Machine.charge_refs m 4;
  let dir = Array.make max_slots None in
  let count = min max_slots (Machine.peek m (dirbuf + 1)) in
  let filled = ref 0 in
  let slot = ref 0 in
  while !filled < count && !slot < max_slots do
    let e = dirbuf + 2 + (!slot * dirent_words) in
    let rec name_of j acc =
      if j > max_name then acc
      else
        let c = Machine.peek m (e + j) in
        if c = 0 then acc
        else if c < 32 || c > 126 then failwith "Dfs.mount: corrupt directory"
        else name_of (j + 1) (acc ^ String.make 1 (Char.chr c))
    in
    let name = name_of 0 "" in
    if name <> "" then begin
      dir.(!slot) <-
        Some
          {
            df_name = name;
            df_slot = !slot;
            df_cap = max 1 (Machine.peek m (e + 13));
            df_start = Machine.peek m (e + 14);
            df_words = Machine.peek m (e + 15);
          };
      incr filled
    end;
    incr slot
  done;
  let t =
    {
      dfs_ds = ds;
      dfs_vfs = vfs;
      dfs_wq = Kernel.waitq ~name:"dfs/mount";
      dfs_mech = mechanisms;
      dfs_dir = dir;
      dfs_dirbuf = dirbuf;
      dfs_js = js;
      dfs_jh_set = jh_set;
      dfs_jh_clear = jh_clear;
      dfs_budget = budget;
    }
  in
  Array.iteri (fun i s -> if s <> None then register_file t i) dir;
  (* initiate write-back of everything dirty when the switch syncs *)
  Vfs.on_sync vfs (fun () -> ignore (Disk_server.flush ds ~barrier:true ()));
  t

(* Register recovery + mount to run at the top of [Boot.go]; the
   explorer's reboot path uses this so log replay happens as part of
   boot, before any thread can look at the file system. *)
let mount_at_boot ?(mechanisms = all_mechanisms) ?(budget = 50_000_000) b vfs ds
    =
  let mounted = ref None in
  Boot.at_boot b (fun () -> mounted := Some (mount ~mechanisms ~budget vfs ds));
  fun () -> !mounted

(* ---------------------------------------------------------------- *)
(* Host-side writable operations (machine-stepping, like
   [Disk_server.read_block_sync]) *)

let create t name ~capacity_blocks =
  if String.length name > max_name then invalid_arg "Dfs.create: name too long";
  if find t name <> None then invalid_arg "Dfs.create: file exists";
  match free_slot t with
  | None -> invalid_arg "Dfs.create: directory full"
  | Some slot ->
    let cap = max 1 capacity_blocks in
    let f =
      {
        df_name = name;
        df_slot = slot;
        df_start = alloc_run t;
        df_cap = cap;
        df_words = 0;
      }
    in
    t.dfs_dir.(slot) <- Some f;
    write_dirent t slot;
    write_count t;
    commit_dir t;
    register_file t slot;
    f

let append t name data =
  match find t name with
  | None -> invalid_arg "Dfs.append: no such file"
  | Some f ->
    if f.df_words + Array.length data > f.df_cap * bw then
      invalid_arg "Dfs.append: run overflow";
    write_words t f ~at:f.df_words data;
    f.df_words <- f.df_words + Array.length data;
    write_dirent t f.df_slot;
    commit_dir t

(* Atomic whole-file replacement.  Journaled mode writes the new
   content into a fresh shadow run and flips the dirent (start and
   length change in one directory image — crash-atomic through the
   intent log).  Without the journal the content is overwritten in
   place: a crash mid-write tears old and new data together, which is
   exactly the state the replace litmus flags. *)
let replace t name data =
  match find t name with
  | None -> invalid_arg "Dfs.replace: no such file"
  | Some f ->
    let needed = max 1 ((Array.length data + bw - 1) / bw) in
    if t.dfs_mech.m_journal then begin
      let cap = max needed f.df_cap in
      let start = alloc_run t in
      let shadow = { f with df_start = start; df_cap = cap; df_words = 0 } in
      write_words t shadow ~at:0 data;
      f.df_start <- start;
      f.df_cap <- cap;
      f.df_words <- Array.length data
    end
    else begin
      if needed > f.df_cap then invalid_arg "Dfs.replace: run overflow";
      write_words t f ~at:0 data;
      f.df_words <- Array.length data
    end;
    write_dirent t f.df_slot;
    commit_dir t

(* Rename, replacing any existing target (the POSIX contract the
   create-rename litmus checks): the target slot takes the source's
   run in the same directory image that clears the source slot. *)
let rename t ~from_ ~to_ =
  if String.length to_ > max_name then invalid_arg "Dfs.rename: name too long";
  match find t from_ with
  | None -> invalid_arg "Dfs.rename: no such file"
  | Some src ->
    (match find t to_ with
    | Some dst ->
      (* target exists: its slot takes the source's run — new name
         and new data appear in one directory image *)
      t.dfs_dir.(dst.df_slot) <-
        Some
          {
            dst with
            df_start = src.df_start;
            df_cap = src.df_cap;
            df_words = src.df_words;
          };
      t.dfs_dir.(src.df_slot) <- None;
      write_dirent t dst.df_slot;
      write_dirent t src.df_slot
    | None ->
      t.dfs_dir.(src.df_slot) <- Some { src with df_name = to_ };
      write_dirent t src.df_slot;
      register_file t src.df_slot);
    write_count t;
    Vfs.unregister t.dfs_vfs ~name:("/disk/" ^ from_);
    commit_dir t

(* Make everything durable: write back all dirty blocks and wait for
   the pipeline to drain.  Unsafe modes rely on this being their only
   synchronization point — exactly like an application that never
   calls fsync until the end. *)
let sync t =
  ignore (Disk_server.flush t.dfs_ds ~barrier:t.dfs_mech.m_barriers ());
  drain t

let fsync t name =
  match find t name with
  | None -> false
  | Some _ ->
    ignore (Disk_server.flush t.dfs_ds ~barrier:t.dfs_mech.m_barriers ());
    drain t;
    true

(* Host-side whole-file read through the cache (litmus predicates). *)
let read_file t name =
  match find t name with
  | None -> None
  | Some f ->
    let m = (t.dfs_vfs.Vfs.kernel).Kernel.machine in
    let out = Array.make f.df_words 0 in
    let ok = ref true in
    let blocks = (f.df_words + bw - 1) / bw in
    for b = 0 to blocks - 1 do
      match
        Disk_server.read_block_sync t.dfs_ds (f.df_start + b)
          ~max_insns:t.dfs_budget
      with
      | None -> ok := false
      | Some buf ->
        let lo = b * bw and hi = min f.df_words ((b + 1) * bw) in
        for off = lo to hi - 1 do
          out.(off) <- Machine.peek m (buf + (off mod bw))
        done
    done;
    if !ok then Some out else None

let files t =
  Array.to_list t.dfs_dir |> List.filter_map (fun s -> s)

let mechanisms t = t.dfs_mech
