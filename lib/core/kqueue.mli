(** Synthesized kernel queues (Figures 1 and 2): the optimistic SP-SC
    and MP-SC queue code generated with the descriptor addresses
    folded in.

    Generated routines are kernel subroutines (entered with Jsr):
    item in r1 (or source pointer r2 and count r3 for the multi-item
    insert), status in r0 (1 = done, 0 = would block), item out in r1
    for gets; r4..r7 are clobbered. *)

type kind = Spsc | Mpsc | Spmc | Mpmc

(** Explicit policy for a put on a full queue, fixed at creation:
    {ul
    {- [Drop] — discard the item, count it (see {!dropped}), report
       success: the producer never stalls;}
    {- [Block] — spin in the put wrapper until a consumer frees a
       slot; only meaningful when something can drain the queue out
       from under the spinner;}
    {- [Fail] — the bare generated code: r0 = 0, caller decides
       (the previous, implicit behavior).}}
    Applies to [q_put]; the atomic multi-item insert keeps [Fail]
    semantics (all-or-nothing must be able to report failure). *)
type overflow = Drop | Block | Fail

type t = {
  q_kind : kind;
  q_name : string;
  q_desc : int; (* [desc] = head, [desc+1] = tail *)
  q_buf : int;
  q_flag : int; (* valid-flag array base; 0 for SP-SC *)
  q_size : int;
  q_put : int; (* code entry points *)
  q_get : int;
  q_put_many : int; (* 0 when absent *)
  q_overflow : overflow;
  q_dropped_cell : int; (* drop-count data cell; 0 unless Drop *)
}

val head_cell : t -> int
val tail_cell : t -> int

(** The unified constructor.  [kind] picks the synchronization
    discipline explicitly:
    {ul
    {- [Spsc] — Figure 1: no CAS anywhere on the path;}
    {- [Mpsc] — Figure 2: CAS slot claim plus valid flags, including
       the atomic multi-item insert;}
    {- [Spmc] — mirror of MP-SC: consumers claim slots by CAS on
       Q_tail and clear the valid flag after reading;}
    {- [Mpmc] — flag-guarded CAS claims at both ends (§3.2's fourth
       kind).}}
    When [kind] is omitted it is derived from [producers]/[consumers]
    (default 1/1) through the quaject interfacer's case table (§5.2).
    With tracing enabled at creation time, the put/get entries are
    wrapped so every call emits a [Queue_put]/[Queue_get] ktrace
    event. *)
val create :
  ?kind:kind ->
  ?producers:int ->
  ?consumers:int ->
  ?overflow:overflow ->
  Kernel.t ->
  name:string ->
  size:int ->
  t

(** Map a queue connector from {!Quaject.connect} to the queue kind it
    names; [None] for non-queue connectors. *)
val kind_of_connector : Quaject.connector -> kind option

(** Items discarded by a [Drop] queue since creation (uncharged). *)
val dropped : Kernel.t -> t -> int

(** Host-side access for servers and tests (uncharged). *)
val host_length : Kernel.t -> t -> int

val host_put : Kernel.t -> t -> int -> bool
val host_get : Kernel.t -> t -> int option

(** The queue code templates (exposed for inspection and ablation). *)
val spsc_put_template : Template.t

val spsc_get_template : Template.t
val mpsc_put_template : Template.t
val mpsc_get_template : Template.t
val mpsc_put_many_template : Template.t
val spmc_get_template : Template.t
val spmc_put_template : Template.t
val mpmc_put_template : Template.t
