(** Kernel memory allocator: a fast-fit heap (§6.3) over the
    machine's data memory — segregated power-of-two free lists with a
    coalescing first-fit fallback.  Allocation costs are charged to
    the simulated clock. *)

type t

exception Out_of_memory

val create : Quamachine.Machine.t -> base:int -> limit:int -> t

(** Allocate [len] words; returns the address. *)
val alloc : t -> int -> int

(** Allocate and zero-fill (the zeroing touches memory and is
    charged). *)
val alloc_zeroed : t -> int -> int

(** Release a block.  Raises [Shared_page base] when [addr] is not an
    allocated data block but falls inside a live refcounted shared
    code page — freeing it would corrupt the page's co-owners. *)
val free : t -> int -> unit

val live_words : t -> int
val block_len : t -> int -> int option

(** {1 Shared code pages}

    Refcounted registry of code pages handed out to multiple owners by
    the synthesis cache.  [free] and [arena_free] consult it so a
    stray free of a shared address refuses instead of silently
    recycling words other threads still execute. *)

exception Shared_page of int

(** Register a page at refcount 1. *)
val share : t -> base:int -> len:int -> unit

(** Bump / drop a page's refcount; both return the new count. *)
val retain : t -> base:int -> int

val release : t -> base:int -> int

(** Remove a page from the registry (after eviction). *)
val unshare : t -> base:int -> unit

(** Covering lookup: the (base, refs) of the page containing [addr]. *)
val shared_page : t -> int -> (int * int) option

(** Current refcount of the page at [base]; 0 when unknown. *)
val shared_refs : t -> base:int -> int

(** {1 Arenas}

    Per-region-kind sub-allocators for synthesized code.  An arena
    grows by whole chunks via its [grow] callback (the kernel passes
    [Machine.reserve_code], so every word is a patchable slot) and
    recycles freed ranges first-fit; the code store itself is
    append-only, so arena reuse is what keeps peak code bytes
    sublinear in the number of instantiations. *)

type arena

val arena : t -> name:string -> ?chunk:int -> grow:(int -> int) -> unit -> arena
val arena_name : arena -> string

(** Allocate [len] words, growing the arena if no free range fits. *)
val arena_alloc : arena -> int -> int

(** Recycle a range for the next instantiation.  Raises [Shared_page]
    if the address still belongs to a live shared page. *)
val arena_free : arena -> int -> unit

val arena_live_words : arena -> int
val arena_total_words : arena -> int
val arena_block_len : arena -> int -> int option
