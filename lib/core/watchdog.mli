(** Flow-rate watchdog quaject.

    Progress is a rate (§4): a watched flow whose counter stops moving
    for [threshold] consecutive periods is stalled, and its restart
    action runs (re-arm a lost timer, re-issue a transfer, restart a
    pump).  Implemented as a periodic host-side machine device, so an
    armed watchdog keeps the machine's event queue non-empty: a
    watched run recovers where an unwatched one would raise
    [Machine.Deadlock].  {!stop} it when the workload ends.

    Watching pays zero simulated cycles; restarts are registered
    through "watchdog.restarts" in the kernel metrics and a
    [Ktrace.Fault "watchdog/<name>"] event. *)

type flow
type t

val install : Kernel.t -> ?period_us:float -> unit -> t
(** Arm the watchdog, checking every [period_us] (default 2000). *)

val watch :
  t ->
  name:string ->
  ?threshold:int ->
  read:(unit -> int) ->
  restart:(unit -> unit) ->
  unit ->
  flow
(** Register a flow: [read] is its monotone progress counter,
    [restart] runs after [threshold] (default 3) zero-delta periods. *)

val stop : t -> unit
(** Idle the device; the machine may deadlock/halt normally again. *)

val restarts : flow -> int
val flow_name : flow -> string
val total_restarts : t -> int
