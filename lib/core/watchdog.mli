(** Flow-rate watchdog quaject.

    Progress is a rate (§4): a watched flow whose counter stops moving
    for [threshold] consecutive periods is stalled, and its restart
    action runs (re-arm a lost timer, re-issue a transfer, restart a
    pump).  Implemented as a periodic host-side machine device, so an
    armed watchdog keeps the machine's event queue non-empty: a
    watched run recovers where an unwatched one would raise
    [Machine.Deadlock].  {!stop} it when the workload ends.

    Watching pays zero simulated cycles; restarts are registered
    through "watchdog.restarts" in the kernel metrics and a
    [Ktrace.Fault "watchdog/<name>"] event. *)

type flow
type t

val install : Kernel.t -> ?period_us:float -> unit -> t
(** Arm the watchdog, checking every [period_us] (default 2000). *)

val watch :
  t ->
  name:string ->
  ?threshold:int ->
  ?escalate:int ->
  read:(unit -> int) ->
  restart:(unit -> unit) ->
  unit ->
  flow
(** Register a flow: [read] is its monotone progress counter,
    [restart] runs after [threshold] (default 3) zero-delta periods.
    After [escalate] (default 3) consecutive restarts with no progress
    between them the watchdog escalates: it logs
    "watchdog_escalation/<name>" and dumps the flight recorder
    ([Kernel.postmortem]) — restarting is evidently not helping. *)

val stop : t -> unit
(** Idle the device; the machine may deadlock/halt normally again. *)

val restarts : flow -> int
val flow_name : flow -> string
val total_restarts : t -> int

val audit_code : t -> unit
(** kheal: also checksum-walk the synthesized-code region table every
    period ([Kernel.audit_code]), resynthesizing corrupted regions —
    catches corruption in code that never executes (the trap path
    catches the rest).  The walk is host-side and free; each repair
    charges synthesis cost. *)

val audit_repairs : t -> int
(** Regions repaired by this watchdog's audit so far. *)
