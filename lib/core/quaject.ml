(* Quaject building blocks and the interfacer's connection analysis
   (§2.3, §5.2).

   Quajects are built from a small set of blocks: queues (Kqueue),
   monitors, switches, pumps and gauges.  The quaject interfacer picks
   the cheapest connector for each producer/consumer pairing by the
   case analysis of §5.2 — applying the principle of frugality:

     active/passive, single/single      -> procedure call
     active/passive, multiple end       -> monitor + procedure call
     active/active,  single/single      -> SP-SC queue
     active/active,  multiple producers -> MP-SC queue (etc.)
     passive/passive                    -> pump

   [connect] encodes that analysis; the examples and the tty/audio
   servers use it to justify the connector they instantiate. *)

open Quamachine
module I = Insn

type endpoint = Active | Passive
type multiplicity = Single | Multiple

(* One end of a connection, named: [end_] says whether the participant
   drives control flow, [mult] how many participants share the end. *)
type port = { end_ : endpoint; mult : multiplicity }

let port ?(mult = Single) end_ = { end_; mult }

type connector =
  | Procedure_call
  | Monitored_call
  | Queue_spsc
  | Queue_mpsc
  | Queue_spmc
  | Queue_mpmc
  | Pump_thread

let connect ~producer ~consumer =
  match (producer, consumer) with
  | { end_ = Active; _ }, { end_ = Passive; mult = Single }
  | { end_ = Passive; mult = Single }, { end_ = Active; _ } ->
    (* one side drives the other directly: collapse to a call *)
    Procedure_call
  | { end_ = Active; _ }, { end_ = Passive; mult = Multiple }
  | { end_ = Passive; mult = Multiple }, { end_ = Active; _ } ->
    Monitored_call
  | { end_ = Active; mult = Single }, { end_ = Active; mult = Single } ->
    Queue_spsc
  | { end_ = Active; mult = Multiple }, { end_ = Active; mult = Single } ->
    Queue_mpsc
  | { end_ = Active; mult = Single }, { end_ = Active; mult = Multiple } ->
    Queue_spmc
  | { end_ = Active; mult = Multiple }, { end_ = Active; mult = Multiple } ->
    Queue_mpmc
  | { end_ = Passive; _ }, { end_ = Passive; _ } -> Pump_thread

let connector_name = function
  | Procedure_call -> "procedure call"
  | Monitored_call -> "monitor + procedure call"
  | Queue_spsc -> "SP-SC optimistic queue"
  | Queue_mpsc -> "MP-SC optimistic queue"
  | Queue_spmc -> "SP-MC optimistic queue"
  | Queue_mpmc -> "MP-MC optimistic queue"
  | Pump_thread -> "pump"

(* ---------------------------------------------------------------- *)
(* Monitor: serializes multiple participants at one end of a
   connection.  enter/exit are synthesized around a CAS spin lock;
   uncontended cost is one CAS. *)

type monitor = { mon_lock : int; mon_enter : int; mon_exit : int }

let create_monitor k ~name =
  let lock = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  let enter, _ =
    Ksynth.install k ~name:(name ^ "/enter")
      [
        I.Label "spin";
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Move (I.Imm 1, I.Reg I.r5);
        I.Cas (I.r4, I.r5, I.Abs lock);
        I.B (I.Ne, I.To_label "spin");
        I.Rts;
      ]
  in
  let exit, _ =
    Ksynth.install k ~name:(name ^ "/exit")
      [ I.Move (I.Imm 0, I.Abs lock); I.Rts ]
  in
  { mon_lock = lock; mon_enter = enter; mon_exit = exit }

(* ---------------------------------------------------------------- *)
(* Switch: directs control flow to one of several targets, e.g. an
   interrupt demultiplexer or a file-system selector (§2.3).  The
   target table lives in data memory so servers can retarget entries
   at run time. *)

type switch = { sw_table : int; sw_entry : int; sw_size : int }

let create_switch k ~name targets =
  let n = Array.length targets in
  let table = Kalloc.alloc_zeroed k.Kernel.alloc (max n 1) in
  Array.iteri (fun i t -> Machine.poke k.Kernel.machine (table + i) t) targets;
  let bad = Ksynth.lookup k "bad_fd" in
  let entry, _ =
    Ksynth.install k ~name:(name ^ "/switch")
      [
        I.Cmp (I.Imm n, I.Reg I.r1);
        I.B (I.Cc, I.To_label "bad"); (* selector out of range *)
        I.Move (I.Reg I.r1, I.Reg I.r4);
        I.Alu (I.Add, I.Imm table, I.r4);
        I.Jmp (I.To_mem (I.Ind I.r4));
        I.Label "bad";
        I.Jmp (I.To_addr bad);
      ]
  in
  { sw_table = table; sw_entry = entry; sw_size = n }

let retarget k sw ~index ~target =
  if index < 0 || index >= sw.sw_size then invalid_arg "Quaject.retarget";
  Machine.poke k.Kernel.machine (sw.sw_table + index) target

(* ---------------------------------------------------------------- *)
(* Gauge: an event counter in kernel memory plus the one-instruction
   fragment synthesized routines embed to tick it. *)

type gauge = { g_cell : int }

let create_gauge k =
  { g_cell = Kalloc.alloc_zeroed k.Kernel.alloc 16 }

let tick_fragment g = [ I.Alu_mem (I.Add, I.Imm 1, I.Abs g.g_cell) ]
let gauge_count k g = Machine.peek k.Kernel.machine g.g_cell
