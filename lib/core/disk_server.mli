(** The file system server pipeline (§5.1): raw interrupt-driven disk
    server → elevator (SCAN) request scheduler → LRU buffer cache with
    dirty write-back.  Additional file systems attach through the
    exposed switch and monitor. *)

type request = {
  r_desc : int;
  r_block : int;
  r_waitq : Kernel.waitq;
  r_epoch : int;
  r_write : bool;
}
(** Request descriptors live in kernel memory:
    [0]=block [1]=buffer [2]=direction
    [3]=status (0 pending, 1 done, 2 failed after bounded retries).
    [r_epoch] is the barrier epoch the request was submitted in; the
    elevator never reorders requests across epochs. *)

type t

val block_words : int

(** [timeout_us]/[max_tries] bound the completion watchdog: a transfer
    whose completion interrupt is lost or stalled is re-issued with a
    doubling allowance, then failed (status 2, waiters woken,
    "disk_failed" logged) after [max_tries] issues.  The watchdog is a
    host-side device armed only while a transfer is in flight — in
    fault-free runs it never fires and costs nothing. *)
val install :
  Kernel.t -> ?cache_capacity:int -> ?timeout_us:float -> ?max_tries:int ->
  unit -> t

(** Queue a transfer in elevator order; completion sets the status
    word and wakes everyone on [r_waitq] (pass [waitq] to share one,
    e.g. per file-system mount).  [~barrier:true] gives the request a
    private epoch: serviced strictly after everything already queued,
    strictly before anything submitted later. *)
val submit :
  t -> ?barrier:bool -> ?waitq:Kernel.waitq -> block:int -> buffer:int ->
  write:bool -> unit -> request

(** A write barrier with no transfer attached: requests submitted
    before the fence are serviced before any submitted after it. *)
val barrier : t -> unit

(** Cache lookup: [None] as second component means a hit; on a miss
    the returned request completes asynchronously. *)
val get_block : t -> ?waitq:Kernel.waitq -> int -> int * request option

val mark_dirty : t -> int -> unit

(** Submit write-backs for every dirty resident block; returns how
    many were submitted.  The dirty bit of each block clears only
    when its completion reports success.  [~barrier:true] fences the
    flushed group off from later submissions. *)
val flush : t -> ?barrier:bool -> unit -> int

(** Nothing queued, nothing active, no write-back in flight. *)
val quiescent : t -> bool

(** Host-side: step the machine until {!quiescent} (or give up). *)
val drain : t -> max_insns:int -> bool

(** Host-side synchronous read: steps the machine until the block is
    resident (tests and host-driven servers).  On [max_insns]
    exhaustion a "disk.sync_timeouts" metric is recorded and the
    request stays re-awaitable: a later call for the same block joins
    the same transfer instead of double-issuing. *)
val read_block_sync : t -> int -> max_insns:int -> int option

(** (hits, misses) *)
val stats : t -> int * int

(** Block numbers in the order the device serviced them. *)
val service_order : t -> int list

(** Barriers issued (standalone fences and barrier requests). *)
val barriers : t -> int

(** Synchronous reads that exhausted their instruction budget. *)
val sync_timeouts : t -> int

(** Blocks currently marked dirty (diagnostics/tests). *)
val dirty_blocks : t -> int list

(** {1 Recovery counters} *)

(** Watchdog expiries (each is a retry or a permanent failure). *)
val timeouts : t -> int

val retries : t -> int

(** Requests failed after exhausting the retry budget. *)
val failed : t -> int

(** Disk interrupts dismissed because the device did not report the
    transfer done (completion-exactly-once guard; also counted in the
    "disk.spurious_irqs" metric). *)
val spurious_irqs : t -> int

(** Cycles from first issue to completion of the most recent request
    that needed at least one retry; 0 if none has recovered yet. *)
val last_recovery_cycles : t -> int

(** Issues of the active request so far (1 = no retry yet). *)
val active_tries : t -> int

val attach_filesystem : t -> slot:int -> entry:int -> unit
