(* Context-switch code synthesis (§4.2).

   Every thread owns specialized switch-out/switch-in procedures with
   all the thread's invariants — TTE save-area addresses, vector-table
   address, CPU quantum, address-space map — folded in as constants.
   The timer vector of the thread's private vector table points
   directly at its sw_out: there is no dispatcher.

   Threads that have never executed a floating-point instruction get
   switch code without the (expensive) FP save/restore; the first FP
   instruction traps and [resynthesize] rebuilds the switch code with
   FP handling included (lazy-FP, §4.2). *)

open Quamachine
module I = Insn

type switch_code = {
  c_sw_out : int;
  c_sw_in : int;
  c_sw_in_mmu : int;
  c_jmp_slot : int;
  c_quantum_slot : int;
  c_pages : int list; (* ksynth page entries backing the code *)
}

(* SR value for kernel-mode continuations: supervisor, IPL 0. *)
let kernel_sr = 1 lsl 13

(* -------------------------------------------------------------- *)
(* Templates *)

(* sw_out runs as the timer-interrupt handler: the CPU has pushed
   [SR][PC] on the thread's kernel stack.  It stores the entire
   context into the TTE and jumps — through the ready queue's
   patchable jmp — into the next thread's sw_in. *)
let sw_out_template ~uses_fp ~probe =
  Template.make ~name:"sw_out" ~params:[ "save"; "fp_save_end" ] (fun p ->
      let save = p "save" in
      List.concat
        [
          (* ktrace probe: empty unless tracing was enabled at
             synthesis time *)
          probe;
          (* r0..r14 into the register save area *)
          List.init 15 (fun i -> I.Move (I.Reg i, I.Abs (save + i)));
          [
            I.Pop I.r0; (* SR of the interrupted context *)
            I.Move (I.Reg I.r0, I.Abs (save + 16));
            I.Pop I.r0; (* PC of the interrupted context *)
            I.Move (I.Reg I.r0, I.Abs (save + 17));
            I.Move (I.Reg I.sp, I.Abs (save + 15)); (* kernel SP, frame popped *)
            I.Move (I.Abs Mmio_map.usp, I.Abs (save + 18)); (* user SP *)
          ];
          (if uses_fp then
             [ I.Lea (I.Abs (p "fp_save_end"), I.r0); I.Fmovem_save I.r0 ]
           else []);
          [ I.Label "jmp_slot"; I.Jmp (I.To_addr 0) (* patched by Ready_queue *) ];
        ])

(* sw_in restores a thread.  Entered at "sw_in_mmu" when the address
   space must change, at "sw_in" otherwise.

   SMP: the quantum-timer register and the current-thread kernel cells
   are invariants bound to the thread's home core — on core 0 they are
   exactly the uniprocessor's constants, so one-core switch code is
   byte-identical to what the uniprocessor synthesized. *)
let sw_in_template ~uses_fp ~probe =
  Template.make ~name:"sw_in"
    ~params:
      [
        "save"; "map_id"; "quantum"; "vtable"; "tte_base"; "tid"; "sw_out";
        "fp_save"; "timer_reg"; "tte_cell"; "tid_cell"; "sw_out_cell";
      ]
    (fun p ->
      let save = p "save" in
      List.concat
        [
          [ I.Label "sw_in_mmu"; I.Move_mmu (I.Imm (p "map_id")); I.Label "sw_in" ];
          probe;
          [
            I.Label "quantum_slot";
            I.Move (I.Imm (p "quantum"), I.Abs (p "timer_reg"));
            I.Move_vbr (I.Imm (p "vtable"));
            I.Move (I.Imm (p "tte_base"), I.Abs (p "tte_cell"));
            I.Move (I.Imm (p "tid"), I.Abs (p "tid_cell"));
            I.Move (I.Imm (p "sw_out"), I.Abs (p "sw_out_cell"));
            I.Move (I.Imm (if uses_fp then 1 else 0), I.Abs Mmio_map.fp_control);
            I.Move (I.Abs (save + 18), I.Abs Mmio_map.usp); (* user SP *)
            I.Move (I.Abs (save + 15), I.Reg I.sp); (* kernel SP *)
            I.Push (I.Abs (save + 17)); (* PC *)
            I.Push (I.Abs (save + 16)); (* SR *)
          ];
          (if uses_fp then [ I.Lea (I.Abs (p "fp_save"), I.r0); I.Fmovem_load I.r0 ]
           else []);
          List.init 15 (fun i -> I.Move (I.Abs (save + i), I.Reg i));
          [ I.Rte ];
        ])

(* -------------------------------------------------------------- *)
(* Synthesis *)

let synthesize k ?(cpu = 0) ~(tte_base : int) ~tid ~map_id ~quantum_us ~uses_fp
    () =
  let save = tte_base + Layout.Tte.off_regs in
  let vtable = tte_base + Layout.Tte.off_vectors in
  let fp_save = tte_base + Layout.Tte.off_fp_save in
  let fp_save_end = fp_save + (Insn.num_fregs * 3) in
  let label = Printf.sprintf "ctx/t%d" tid in
  let h_out =
    Ksynth.instantiate k ~name:(label ^ "/sw_out")
      ~template:
        (sw_out_template ~uses_fp ~probe:(Kernel.trace_probe k (Ktrace.Switch_out tid)))
      ~invariants:[ ("save", save); ("fp_save_end", fp_save_end) ]
  in
  let sw_out = Ksynth.entry h_out in
  let h_in =
    Ksynth.instantiate k ~name:(label ^ "/sw_in")
      ~template:
        (sw_in_template ~uses_fp ~probe:(Kernel.trace_probe k (Ktrace.Switch_in tid)))
      ~invariants:
        [
          ("save", save);
          ("map_id", map_id);
          ("quantum", quantum_us);
          ("vtable", vtable);
          ("tte_base", tte_base);
          ("tid", tid);
          ("sw_out", sw_out);
          ("fp_save", fp_save);
          ("timer_reg", Mmio_map.timer_alarm_for cpu);
          ("tte_cell", Layout.cur_tte_cell_for cpu);
          ("tid_cell", Layout.cur_tid_cell_for cpu);
          ("sw_out_cell", Layout.cur_sw_out_cell_for cpu);
        ]
  in
  let c =
    {
      c_sw_out = sw_out;
      c_sw_in = Ksynth.sym h_in "sw_in";
      c_sw_in_mmu = Ksynth.sym h_in "sw_in_mmu";
      c_jmp_slot = Ksynth.sym h_out "jmp_slot";
      c_quantum_slot = Ksynth.sym h_in "quantum_slot";
      c_pages = [ Ksynth.entry h_out; Ksynth.entry h_in ];
    }
  in
  (* the ready ring and the scheduler patch these at run time: they
     hold scheduling state, not template content *)
  Kernel.region_mark_mutable k ~addr:c.c_jmp_slot;
  Kernel.region_mark_mutable k ~addr:c.c_quantum_slot;
  c

(* Install freshly synthesized switch code into [t] and reconnect the
   ready queue around the new entry points. *)
let apply_switch_code k t (c : switch_code) =
  (* resynthesis replaces the thread's claim on its previous switch
     pages (lazy-FP rebuild); at creation there is nothing to drop *)
  List.iter
    (fun e ->
      if e <> 0 && not (List.mem e c.c_pages) then begin
        Ksynth.release_entry k e;
        t.Kernel.owned_pages <- List.filter (fun x -> x <> e) t.Kernel.owned_pages
      end)
    [ t.Kernel.sw_out; t.Kernel.sw_in_mmu ];
  t.Kernel.owned_pages <-
    List.filter (fun e -> not (List.mem e t.Kernel.owned_pages)) c.c_pages
    @ t.Kernel.owned_pages;
  t.Kernel.sw_out <- c.c_sw_out;
  t.Kernel.sw_in <- c.c_sw_in;
  t.Kernel.sw_in_mmu <- c.c_sw_in_mmu;
  t.Kernel.jmp_slot <- c.c_jmp_slot;
  t.Kernel.quantum_slot <- c.c_quantum_slot;
  Kernel.set_vector k t Mmio_map.timer_vector c.c_sw_out;
  if Ready_queue.in_queue t then begin
    let p = Ready_queue.prev_exn t and n = Ready_queue.next_exn t in
    Ready_queue.relink k p t;
    Ready_queue.relink k t n
  end

(* Resynthesize the switch code after the thread's first FP
   instruction trapped: from now on this thread pays for FP state. *)
let resynthesize_with_fp k t =
  t.Kernel.uses_fp <- true;
  let cpu = t.Kernel.cpu in
  let c =
    synthesize k ~cpu ~tte_base:t.Kernel.base ~tid:t.Kernel.tid
      ~map_id:t.Kernel.map_id ~quantum_us:t.Kernel.quantum_us ~uses_fp:true ()
  in
  apply_switch_code k t c;
  (* the running thread's cur_sw_out cell must track the new code *)
  (match Kernel.current ~cpu k with
  | Some cur when cur == t ->
    Machine.poke k.Kernel.machine (Layout.cur_sw_out_cell_for cpu) c.c_sw_out
  | _ -> ())

(* SMP migration: rebuild the switch code with the destination core's
   cell addresses and quantum-timer register bound in.  The thread
   must be off every ready ring — the caller removes it, rehomes it
   here, and reinserts it on the new core's ring. *)
let resynthesize_for_cpu k t ~cpu =
  if Ready_queue.in_queue t then
    invalid_arg "Ctx.resynthesize_for_cpu: thread still queued";
  t.Kernel.cpu <- cpu;
  let c =
    synthesize k ~cpu ~tte_base:t.Kernel.base ~tid:t.Kernel.tid
      ~map_id:t.Kernel.map_id ~quantum_us:t.Kernel.quantum_us
      ~uses_fp:t.Kernel.uses_fp ()
  in
  apply_switch_code k t c

(* -------------------------------------------------------------- *)
(* Partial context switch (§4.2, Table 4: ~3 us).

   Cooperative transfer between kernel siblings sharing a quaspace:
   "we switch only the part of the context being used" — here the
   callee-context registers and the stack pointer; no vector table, no
   MMU, no FP, no exception frame.  The switch routine is synthesized
   per coroutine pair with both stack cells folded in; calling it
   returns on the other context's stack. *)

let partial_switch_template =
  Template.make ~name:"partial_switch" ~params:[ "from_cell"; "to_cell" ] (fun p ->
      [
        I.Movem_save ([ 9; 10; 11; 12; 13; 14 ], I.sp);
        I.Move (I.Reg I.sp, I.Abs (p "from_cell"));
        I.Move (I.Abs (p "to_cell"), I.Reg I.sp);
        I.Movem_load (I.sp, [ 9; 10; 11; 12; 13; 14 ]);
        I.Rts;
      ])

let synthesize_partial_switch k ~name ~from_cell ~to_cell =
  Ksynth.entry
    (Ksynth.instantiate k ~name ~template:partial_switch_template
       ~invariants:[ ("from_cell", from_cell); ("to_cell", to_cell) ])

(* Retune the CPU quantum by patching the immediate in the thread's
   sw_in code (fine-grain scheduling, §4.4).  The patched instruction
   must keep targeting the thread's home-core timer register. *)
let set_quantum k t quantum_us =
  t.Kernel.quantum_us <- quantum_us;
  Kernel.patch_code k t.Kernel.quantum_slot
    (I.Move (I.Imm quantum_us, I.Abs (Mmio_map.timer_alarm_for t.Kernel.cpu)));
  Kernel.trace k (Ktrace.Patched t.Kernel.quantum_slot);
  Machine.charge k.Kernel.machine 4
