(* Kernel memory allocator over the machine's data memory.

   The paper's allocator is an executable data structure implementing
   a fast-fit heap (§6.3).  We implement the fast-fit policy —
   segregated free lists indexed by size class, falling back to
   first-fit on a sorted large-block list — as a host-side service
   with explicit cycle charging, since allocation is never on a
   synthesized hot path that the evaluation measures per-instruction. *)

open Quamachine

type block = { addr : int; len : int }

(* Shared code pages: base -> (len, refcount).  Registered by the
   synthesis cache so a stray [free] of an address inside a page that
   other threads still execute refuses instead of silently recycling
   the words under them. *)
type shared_page = { sp_len : int; mutable sp_refs : int }

type t = {
  machine : Machine.t;
  base : int;
  limit : int;
  (* size-class free lists: class i holds blocks of exactly 2^(i+4) words *)
  classes : block list array;
  mutable large : block list; (* sorted by address, coalesced *)
  mutable live_words : int;
  mutable allocated : (int, int) Hashtbl.t; (* addr -> len *)
  shared_pages : (int, shared_page) Hashtbl.t; (* base -> page *)
}

let num_classes = 8
let class_words i = 1 lsl (i + 4) (* 16 .. 2048 words *)

let create machine ~base ~limit =
  {
    machine;
    base;
    limit;
    classes = Array.make num_classes [];
    large = [ { addr = base; len = limit - base } ];
    live_words = 0;
    allocated = Hashtbl.create 64;
    shared_pages = Hashtbl.create 32;
  }

let class_for len =
  let rec go i = if i >= num_classes then None else if class_words i >= len then Some i else go (i + 1) in
  go 0

(* Carve [len] words from the large list (first fit). *)
let carve t len =
  let rec go acc = function
    | [] -> None
    | b :: rest when b.len >= len ->
      let remainder =
        if b.len = len then rest else { addr = b.addr + len; len = b.len - len } :: rest
      in
      Some (b.addr, List.rev_append acc remainder)
    | b :: rest -> go (b :: acc) rest
  in
  match go [] t.large with
  | None -> None
  | Some (addr, large) ->
    t.large <- large;
    Some addr

exception Out_of_memory

(* Allocate [len] words; returns the address.  Fast path: pop the
   size-class list (the "fast fit"); slow path: carve from the large
   region.  Cost: ~20 cycles fast, ~60 slow (charged). *)
let alloc t len =
  if len <= 0 then invalid_arg "Kalloc.alloc";
  let addr, charged =
    match class_for len with
    | Some cls -> (
      match t.classes.(cls) with
      | b :: rest ->
        t.classes.(cls) <- rest;
        (Some b.addr, 20)
      | [] -> (
        match carve t (class_words cls) with
        | Some addr -> (Some addr, 60)
        | None -> (None, 60)))
    | None -> (
      match carve t len with Some addr -> (Some addr, 80) | None -> (None, 80))
  in
  Machine.charge t.machine charged;
  match addr with
  | None -> raise Out_of_memory
  | Some addr ->
    let stored_len =
      match class_for len with Some cls -> class_words cls | None -> len
    in
    Hashtbl.replace t.allocated addr stored_len;
    t.live_words <- t.live_words + stored_len;
    addr

(* Allocate and zero. *)
let alloc_zeroed t len =
  let addr = alloc t len in
  for i = addr to addr + len - 1 do
    Machine.poke t.machine i 0
  done;
  (* zeroing touches memory for real *)
  Machine.charge_refs t.machine len;
  addr

(* ------------------------------------------------------------------ *)
(* Shared code pages (refcounted).

   The synthesis cache hands the same code page to many owners.  The
   registry below is how [free] learns that an address belongs to one
   of those pages: the allocated-block table is always checked first
   (code and data addresses overlap numerically, and a data block that
   merely aliases a page base must still free normally), and only an
   address that is NOT an allocated data block but IS covered by a
   live shared page raises [Shared_page] instead of corrupting the
   co-owners. *)

exception Shared_page of int

let share t ~base ~len =
  Hashtbl.replace t.shared_pages base { sp_len = len; sp_refs = 1 }

let retain t ~base =
  match Hashtbl.find_opt t.shared_pages base with
  | None -> invalid_arg "Kalloc.retain: not a shared page"
  | Some p ->
    p.sp_refs <- p.sp_refs + 1;
    p.sp_refs

let release t ~base =
  match Hashtbl.find_opt t.shared_pages base with
  | None -> invalid_arg "Kalloc.release: not a shared page"
  | Some p ->
    p.sp_refs <- max 0 (p.sp_refs - 1);
    p.sp_refs

let unshare t ~base = Hashtbl.remove t.shared_pages base

(* Covering lookup: is [addr] inside any registered page?  Only runs
   on the failure path of [free]/[arena_free], so a scan is fine. *)
let shared_page t addr =
  Hashtbl.fold
    (fun base p acc ->
      if addr >= base && addr < base + p.sp_len then Some (base, p.sp_refs)
      else acc)
    t.shared_pages None

let shared_refs t ~base =
  match Hashtbl.find_opt t.shared_pages base with
  | None -> 0
  | Some p -> p.sp_refs

let free t addr =
  match Hashtbl.find_opt t.allocated addr with
  | None -> (
    match shared_page t addr with
    | Some (base, _) -> raise (Shared_page base)
    | None -> invalid_arg "Kalloc.free: not an allocated block")
  | Some len ->
    Hashtbl.remove t.allocated addr;
    t.live_words <- t.live_words - len;
    Machine.charge t.machine 15;
    (match class_for len with
    | Some cls when class_words cls = len ->
      t.classes.(cls) <- { addr; len } :: t.classes.(cls)
    | _ ->
      (* return to the large list, keeping it address-sorted and
         coalescing neighbours *)
      let rec insert = function
        | [] -> [ { addr; len } ]
        | b :: rest when addr + len = b.addr -> { addr; len = len + b.len } :: rest
        | b :: rest when b.addr + b.len = addr -> insert_merge b rest
        | b :: rest when addr < b.addr -> { addr; len } :: b :: rest
        | b :: rest -> b :: insert rest
      and insert_merge b rest =
        match rest with
        | nxt :: rest' when b.addr + b.len + len = nxt.addr ->
          { addr = b.addr; len = b.len + len + nxt.len } :: rest'
        | _ -> { addr = b.addr; len = b.len + len } :: rest
      in
      t.large <- insert t.large)

let live_words t = t.live_words
let block_len t addr = Hashtbl.find_opt t.allocated addr

(* ------------------------------------------------------------------ *)
(* Arenas: per-region-kind sub-allocators for synthesized code.

   An arena owns a set of chunks obtained from a [grow] callback (the
   kernel grows code arenas with [Machine.reserve_code], so every word
   is a patchable slot) and hands out first-fit ranges from a sorted,
   coalesced free list.  Arenas never return space to the machine —
   the code store is append-only — so "free" means recyclable for the
   next instantiation of the same kind. *)

type arena = {
  ar_parent : t;
  ar_name : string;
  ar_chunk : int; (* minimum words per grow *)
  ar_grow : int -> int; (* words -> base of a fresh chunk *)
  mutable ar_free : block list; (* addr-sorted, coalesced *)
  mutable ar_total : int; (* words ever acquired *)
  mutable ar_live : int;
  ar_blocks : (int, int) Hashtbl.t; (* addr -> len *)
}

let arena t ~name ?(chunk = 256) ~grow () =
  {
    ar_parent = t;
    ar_name = name;
    ar_chunk = chunk;
    ar_grow = grow;
    ar_free = [];
    ar_total = 0;
    ar_live = 0;
    ar_blocks = Hashtbl.create 32;
  }

let arena_name a = a.ar_name
let arena_live_words a = a.ar_live
let arena_total_words a = a.ar_total

(* Insert a block into the free list, address-sorted, coalescing. *)
let arena_insert a addr len =
  let rec insert = function
    | [] -> [ { addr; len } ]
    | b :: rest when addr + len = b.addr -> { addr; len = len + b.len } :: rest
    | b :: rest when b.addr + b.len = addr -> insert_merge b rest
    | b :: rest when addr < b.addr -> { addr; len } :: b :: rest
    | b :: rest -> b :: insert rest
  and insert_merge b rest =
    match rest with
    | nxt :: rest' when b.addr + b.len + len = nxt.addr ->
      { addr = b.addr; len = b.len + len + nxt.len } :: rest'
    | _ -> { addr = b.addr; len = b.len + len } :: rest
  in
  a.ar_free <- insert a.ar_free

let arena_carve a len =
  let rec go acc = function
    | [] -> None
    | b :: rest when b.len >= len ->
      let remainder =
        if b.len = len then rest
        else { addr = b.addr + len; len = b.len - len } :: rest
      in
      Some (b.addr, List.rev_append acc remainder)
    | b :: rest -> go (b :: acc) rest
  in
  match go [] a.ar_free with
  | None -> None
  | Some (addr, free) ->
    a.ar_free <- free;
    Some addr

let arena_alloc a len =
  if len <= 0 then invalid_arg "Kalloc.arena_alloc";
  let addr, charged =
    match arena_carve a len with
    | Some addr -> (addr, 30)
    | None ->
      let want = max len a.ar_chunk in
      let base = a.ar_grow want in
      a.ar_total <- a.ar_total + want;
      arena_insert a base want;
      (match arena_carve a len with
      | Some addr -> (addr, 90)
      | None -> assert false)
  in
  Machine.charge a.ar_parent.machine charged;
  Hashtbl.replace a.ar_blocks addr len;
  a.ar_live <- a.ar_live + len;
  addr

let arena_free a addr =
  match Hashtbl.find_opt a.ar_blocks addr with
  | None -> invalid_arg "Kalloc.arena_free: not an arena block"
  | Some len ->
    (match shared_page a.ar_parent addr with
    | Some (base, refs) when refs > 0 -> raise (Shared_page base)
    | _ -> ());
    Hashtbl.remove a.ar_blocks addr;
    a.ar_live <- a.ar_live - len;
    Machine.charge a.ar_parent.machine 15;
    arena_insert a addr len

let arena_block_len a addr = Hashtbl.find_opt a.ar_blocks addr
