(* The memory-resident file system and /dev/null (§6.2–6.3).

   `open` synthesizes the read and write routines for the file being
   opened: buffer base address, size cell, per-open position cell and
   the calling thread's scheduling gauge are all folded into the code
   as constants.  The copy loop moves words through registers unrolled
   eight at a time — the paper's `9*N/8 us` shape and its ~8 MB/s pipe
   transfer rate come from exactly this kind of generated code. *)

open Quamachine
module I = Insn
module L = Layout.Tte

(* -------------------------------------------------------------- *)
(* /dev/null: the cheapest possible synthesized routines. *)

let null_read_template =
  Template.make ~name:"null_read" ~params:[] (fun _ ->
      [ I.Move (I.Imm 0, I.Reg I.r0); I.Rte ])

let null_write_template =
  Template.make ~name:"null_write" ~params:[] (fun _ ->
      [ I.Move (I.Reg I.r3, I.Reg I.r0); I.Rte ])

let register_null vfs =
  let k = vfs.Vfs.kernel in
  Vfs.register vfs ~name:"/dev/null" (fun tte ~fd ->
      let tag = Printf.sprintf "open/t%d/fd%d/null" tte.Kernel.tid fd in
      let r =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/read") ~template:null_read_template
             ~invariants:[])
      in
      let w =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/write")
             ~template:null_write_template ~invariants:[])
      in
      {
        Vfs.h_read = r;
        h_write = w;
        h_pos_cell = None;
        h_close =
          (fun () ->
            Ksynth.release_entry k r;
            Ksynth.release_entry k w);
        h_fsync = (fun () -> ()); (* no backing store *)
      })

(* -------------------------------------------------------------- *)
(* Memory-resident files *)

type file = {
  f_name : string;
  f_buf : int; (* content buffer (kalloc block) *)
  f_cap : int; (* capacity in words *)
  f_size_cell : int; (* current length lives in memory *)
}

(* An unrolled-by-8 copy loop: count in r3, src in r5, dst in r2,
   scratch r4.  Emitted inline by the read and write templates. *)
let copy_loop ~prefix =
  let lbl s = prefix ^ s in
  [
    I.Move (I.Reg I.r3, I.Reg I.r4);
    I.Alu (I.Lsr, I.Imm 3, I.r4); (* 8-word blocks *)
    I.B (I.Eq, I.To_label (lbl "tail"));
    I.Alu (I.Sub, I.Imm 1, I.r4);
    I.Label (lbl "blk");
  ]
  @ List.init 8 (fun _ -> I.Move (I.Post_inc I.r5, I.Post_inc I.r2))
  @ [
      I.Dbra (I.r4, I.To_label (lbl "blk"));
      I.Label (lbl "tail");
      I.Move (I.Reg I.r3, I.Reg I.r4);
      I.Alu (I.And, I.Imm 7, I.r4);
      I.B (I.Eq, I.To_label (lbl "done"));
      I.Alu (I.Sub, I.Imm 1, I.r4);
      I.Label (lbl "t1");
      I.Move (I.Post_inc I.r5, I.Post_inc I.r2);
      I.Dbra (I.r4, I.To_label (lbl "t1"));
      I.Label (lbl "done");
    ]

(* read(fd, buf, n): r2 = destination, r3 = count; returns words read
   in r0.  Clamps to end of file; 0 at EOF. *)
let file_read_template =
  Template.make ~name:"file_read" ~params:[ "buf"; "size_cell"; "pos_cell"; "gauge" ]
    (fun p ->
      [
        I.Move (I.Abs (p "pos_cell"), I.Reg I.r4);
        I.Move (I.Abs (p "size_cell"), I.Reg I.r5);
        I.Alu (I.Sub, I.Reg I.r4, I.r5); (* r5 = remaining *)
        I.B (I.Eq, I.To_label "eof");
        I.Cmp (I.Reg I.r5, I.Reg I.r3); (* count - remaining *)
        I.B (I.Ls, I.To_label "have"); (* count <= remaining *)
        I.Move (I.Reg I.r5, I.Reg I.r3); (* clamp *)
        I.Label "have";
        I.Move (I.Reg I.r3, I.Reg I.r0); (* return value *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5); (* src = buf + pos *)
        I.Alu (I.Add, I.Reg I.r3, I.r4);
        I.Move (I.Reg I.r4, I.Abs (p "pos_cell")); (* pos += count *)
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "gauge")); (* scheduling gauge *)
      ]
      @ copy_loop ~prefix:"r"
      @ [ I.Rte; I.Label "eof"; I.Move (I.Imm 0, I.Reg I.r0); I.Rte ])

(* write(fd, buf, n): copies into the file at the position cell,
   growing the size up to capacity; returns words written in r0. *)
let file_write_template =
  Template.make ~name:"file_write"
    ~params:[ "buf"; "cap"; "size_cell"; "pos_cell"; "gauge" ] (fun p ->
      [
        I.Move (I.Abs (p "pos_cell"), I.Reg I.r4);
        I.Move (I.Imm (p "cap"), I.Reg I.r5);
        I.Alu (I.Sub, I.Reg I.r4, I.r5); (* r5 = room *)
        I.B (I.Eq, I.To_label "full");
        I.Cmp (I.Reg I.r5, I.Reg I.r3);
        I.B (I.Ls, I.To_label "fits");
        I.Move (I.Reg I.r5, I.Reg I.r3); (* clamp to capacity *)
        I.Label "fits";
        I.Move (I.Reg I.r3, I.Reg I.r0);
        (* dst = buf + pos, in r2; source pointer moves to r5 *)
        I.Move (I.Reg I.r2, I.Reg I.r5); (* src = user buffer *)
        I.Move (I.Reg I.r4, I.Reg I.r2);
        I.Alu (I.Add, I.Imm (p "buf"), I.r2); (* dst = buf + pos *)
        I.Alu (I.Add, I.Reg I.r3, I.r4);
        I.Move (I.Reg I.r4, I.Abs (p "pos_cell")); (* pos += count *)
        (* size = max size pos' *)
        I.Cmp (I.Abs (p "size_cell"), I.Reg I.r4); (* pos' - size *)
        I.B (I.Ls, I.To_label "nosize"); (* pos' <= size *)
        I.Move (I.Reg I.r4, I.Abs (p "size_cell"));
        I.Label "nosize";
        I.Alu_mem (I.Add, I.Imm 1, I.Abs (p "gauge"));
      ]
      @ copy_loop ~prefix:"w"
      @ [ I.Rte; I.Label "full"; I.Move (I.Imm 0, I.Reg I.r0); I.Rte ])

(* -------------------------------------------------------------- *)

(* Create a memory-resident file and register it in the name space.
   [content] preloads the file body. *)
let create_file vfs ~name ?(capacity = 8192) ?(content = [||]) () =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  let buf = Kalloc.alloc k.Kernel.alloc capacity in
  let size_cell = Kalloc.alloc k.Kernel.alloc 16 in
  Array.iteri (fun i v -> Machine.poke m (buf + i) v) content;
  Machine.poke m size_cell (Array.length content);
  let file = { f_name = name; f_buf = buf; f_cap = capacity; f_size_cell = size_cell } in
  Vfs.register vfs ~name (fun tte ~fd ->
      let pos_cell = Kalloc.alloc k.Kernel.alloc 16 in
      Machine.poke m pos_cell 0;
      let gauge = tte.Kernel.base + L.off_gauge in
      let tag = Printf.sprintf "open/t%d/fd%d/file" tte.Kernel.tid fd in
      let env =
        [
          ("buf", buf);
          ("cap", capacity);
          ("size_cell", size_cell);
          ("pos_cell", pos_cell);
          ("gauge", gauge);
        ]
      in
      let r =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/read") ~template:file_read_template
             ~invariants:env)
      in
      let w =
        Ksynth.entry
          (Ksynth.instantiate k ~name:(tag ^ "/write")
             ~template:file_write_template ~invariants:env)
      in
      {
        Vfs.h_read = r;
        h_write = w;
        h_pos_cell = Some pos_cell;
        h_close =
          (fun () ->
            Ksynth.release_entry k r;
            Ksynth.release_entry k w;
            Kalloc.free k.Kernel.alloc pos_cell);
        h_fsync = (fun () -> ()); (* memory-resident: always durable-as-built *)
      });
  file

(* Host-side peek at file contents (for tests). *)
let file_contents vfs file =
  let m = vfs.Vfs.kernel.Kernel.machine in
  let size = Machine.peek m file.f_size_cell in
  Array.init size (fun i -> Machine.peek m (file.f_buf + i))

let file_size vfs file = Machine.peek vfs.Vfs.kernel.Kernel.machine file.f_size_cell
