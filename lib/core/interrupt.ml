(* Interrupt-handling machinery (§5.3–5.4, Table 5).

   Procedure Chaining: instead of synchronizing with a running
   interrupt handler, a new procedure is chained to run when the
   handler finishes, by rewriting the return address in the exception
   frame.  The pending procedures sit in an optimistic MP-SC queue, so
   chaining from nested interrupt levels needs no locking — the queue
   put *is* the measured "chain to a procedure" cost.

   The A/D buffered queue: at 44,100 interrupts per second, queue
   bookkeeping per element would dominate.  Code synthesis generates
   eight tiny handlers, each storing the sample into a different slot
   of the *same* queue element with the slot address folded in; the
   interrupt vector rotates through them, and only the eighth does the
   queue-element bookkeeping.  The per-interrupt path is a handful of
   instructions (Table 5: 3 us). *)

open Quamachine
module I = Insn

(* ---------------------------------------------------------------- *)
(* Procedure chaining *)

type chain = {
  ch_queue : Kqueue.t;
  ch_saved : int; (* original return address during a chained run *)
  ch_chain : int; (* entry: Jsr with proc address in r1 *)
  ch_runner : int;
}

let install_chain k =
  let queue = Kqueue.create ~kind:Kqueue.Mpsc k ~name:"chain/q" ~size:32 in
  let saved = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
  (* The runner executes in the interrupted (kernel) context after the
     handler's Rte: drain the queue, then resume where the interrupt
     hit. *)
  let runner, _ =
    Ksynth.install k ~name:"chain/runner"
      [
        I.Push (I.Reg I.r0);
        I.Push (I.Reg I.r1);
        I.Push (I.Reg I.r4);
        I.Push (I.Reg I.r5);
        I.Label "loop";
        I.Jsr (I.To_addr queue.Kqueue.q_get);
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "out");
        I.Jsr (I.To_reg I.r1); (* run the chained procedure *)
        I.B (I.Always, I.To_label "loop");
        I.Label "out";
        I.Pop I.r5;
        I.Pop I.r4;
        I.Pop I.r1;
        I.Pop I.r0;
        I.Jmp (I.To_mem (I.Abs saved));
      ]
  in
  (* chain(r1 = proc): called with Jsr from inside a handler whose
     exception frame is on top of the stack.  After our return address
     is pushed, the frame PC slot is at sp+2. *)
  let chain, _ =
    Ksynth.install k ~name:"chain/chain"
      [
        I.Jsr (I.To_addr queue.Kqueue.q_put); (* optimistic insert *)
        I.Tst (I.Reg I.r0);
        I.B (I.Eq, I.To_label "drop"); (* chain queue overflow *)
        I.Move (I.Idx (I.sp, 2), I.Reg I.r4);
        I.Cmp (I.Imm runner, I.Reg I.r4);
        I.B (I.Eq, I.To_label "done"); (* already redirected *)
        I.Move (I.Reg I.r4, I.Abs saved);
        I.Move (I.Imm runner, I.Idx (I.sp, 2)); (* rewrite return addr *)
        I.Label "done";
        I.Rts;
        I.Label "drop";
        I.Rts;
      ]
  in
  { ch_queue = queue; ch_saved = saved; ch_chain = chain; ch_runner = runner }

(* ---------------------------------------------------------------- *)
(* The A/D buffered queue *)

type adq = {
  adq_factor : int; (* samples per element (the blocking factor) *)
  adq_elems : int; (* element array: n * factor words *)
  adq_flags : int; (* per-element valid flags *)
  adq_n : int;
  adq_desc : int; (* [0]=head element, [1]=tail element, [2]=cwait *)
  adq_stage_cell : int; (* current stage handler, used by the vector stub *)
  adq_stages : int array; (* stage entry points *)
  adq_store_slots : int array; (* code addr of each stage's store insn *)
  adq_get : int; (* consumer routine: r0=status, r1=element address *)
  adq_consumer_wq : Kernel.waitq;
  mutable adq_overruns : int;
}

(* The paper's production configuration (§5.4). *)
let blocking_factor = 8

let stage_template ~slot_addr ~next_stage ~stage_cell ~is_last ~advance_hcall =
  Template.make ~name:"ad_stage" ~params:[] (fun _ ->
      [
        I.Push (I.Reg I.r4);
        I.Move (I.Abs Mmio_map.ad_data, I.Reg I.r4);
        I.Label "store"; (* patched to the current element's slot *)
        I.Move (I.Reg I.r4, I.Abs slot_addr);
        I.Move (I.Imm next_stage, I.Abs stage_cell);
      ]
      @ (if is_last then [ I.Hcall advance_hcall ] else [])
      @ [ I.Pop I.r4; I.Rte ])

let elem_addr adq i = adq.adq_elems + (i * adq.adq_factor)

let install_adq k ?(factor = blocking_factor) ~n_elems () =
  if factor < 1 then invalid_arg "Interrupt.install_adq: factor";
  let alloc = k.Kernel.alloc in
  let elems = Kalloc.alloc_zeroed alloc (n_elems * factor) in
  let flags = Kalloc.alloc_zeroed alloc n_elems in
  let desc = Kalloc.alloc_zeroed alloc 16 in
  let stage_cell = Kalloc.alloc_zeroed alloc 16 in
  let consumer_wq = Kernel.waitq ~name:"adq/consumer" in
  let adq =
    {
      adq_factor = factor;
      adq_elems = elems;
      adq_flags = flags;
      adq_n = n_elems;
      adq_desc = desc;
      adq_stage_cell = stage_cell;
      adq_stages = Array.make factor 0;
      adq_store_slots = Array.make factor 0;
      adq_get = 0;
      adq_consumer_wq = consumer_wq;
      adq_overruns = 0;
    }
  in
  let m = k.Kernel.machine in
  let wake_consumer = Thread.unblock_hcall k consumer_wq in
  (* element-boundary bookkeeping: mark the element valid, advance to
     the next one (dropping the oldest on overrun), and re-specialize
     the eight store instructions for the new element's slots *)
  let advance_hcall =
    Machine.register_hcall m (fun m ->
        let head = Machine.peek m desc in
        Machine.poke m (flags + head) 1;
        let next = if head + 1 = n_elems then 0 else head + 1 in
        (* overrun: drop the oldest element by advancing the tail *)
        if Machine.peek m (flags + next) = 1 then begin
          adq.adq_overruns <- adq.adq_overruns + 1;
          Machine.poke m (flags + next) 0;
          let tail = Machine.peek m (desc + 1) in
          Machine.poke m (desc + 1) (if tail + 1 = n_elems then 0 else tail + 1)
        end;
        Machine.poke m desc next;
        let base = elem_addr adq next in
        Array.iteri
          (fun i slot ->
            Kernel.patch_code k slot (I.Move (I.Reg I.r4, I.Abs (base + i))))
          adq.adq_store_slots;
        (* fixed element bookkeeping (flag, head, overrun and wake
           checks) plus one code patch per slot re-specialized *)
        Machine.charge m (30 + (4 * factor));
        (* wake the consumer if it flagged itself waiting *)
        if Machine.peek m (desc + 2) = 1 then begin
          Machine.poke m (desc + 2) 0;
          ignore (Thread.unblock k consumer_wq)
        end;
        ignore wake_consumer)
  in
  (* synthesize the eight stage handlers, last stage first so each can
     point at its successor; stage 0's successor is patched below *)
  let stage_entries = adq.adq_stages and store_slots = adq.adq_store_slots in
  for i = factor - 1 downto 0 do
    let next_stage = if i = factor - 1 then 0 else stage_entries.(i + 1) in
    let is_last = i = factor - 1 in
    let h =
      Ksynth.instantiate k
        ~name:(Printf.sprintf "adq/stage%d" i)
        ~template:
          (stage_template ~slot_addr:(elem_addr adq 0 + i) ~next_stage ~stage_cell
             ~is_last ~advance_hcall)
        ~invariants:[]
    in
    stage_entries.(i) <- Ksynth.entry h;
    store_slots.(i) <- Ksynth.sym h "store"
  done;
  (* close the ring: the last stage rotates back to stage 0 *)
  let last = factor - 1 in
  (match Machine.read_code m (store_slots.(last) + 1) with
  | I.Move (I.Imm _, I.Abs cell) when cell = stage_cell ->
    Kernel.patch_code k (store_slots.(last) + 1)
      (I.Move (I.Imm stage_entries.(0), I.Abs stage_cell))
  | _ -> failwith "adq: unexpected stage layout");
  (* the store slots are re-specialized per element at run time *)
  Array.iter
    (fun slot -> Kernel.region_mark_mutable k ~addr:slot)
    store_slots;
  Kernel.region_mark_mutable k ~addr:(store_slots.(last) + 1);
  Machine.poke m stage_cell stage_entries.(0);
  (* the shared A/D vector: one indirection through the stage cell *)
  let ad_irq, _ =
    Ksynth.install k ~name:"adq/irq" [ I.Jmp (I.To_mem (I.Abs stage_cell)) ]
  in
  Kernel.set_vector_all k Mmio_map.ad_vector ad_irq;
  (* consumer routine: r0 = status, r1 = address of a valid element *)
  let get, _ =
    Ksynth.install k ~name:"adq/get"
      [
        I.Move (I.Abs (desc + 1), I.Reg I.r4); (* tail element *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm flags, I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Eq, I.To_label "empty");
        I.Move (I.Imm 0, I.Ind I.r5);
        I.Move (I.Reg I.r4, I.Reg I.r1);
        I.Alu (I.Mul, I.Imm factor, I.r1);
        I.Alu (I.Add, I.Imm elems, I.r1);
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm n_elems, I.Reg I.r4);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nowrap";
        I.Move (I.Reg I.r4, I.Abs (desc + 1));
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ]
  in
  { adq with adq_get = get }

(* Consumer-side guarded block fragment (the cwait flag is desc+2). *)
let consumer_block_code k adq ~retry =
  [
    I.Set_ipl 6;
    I.Move (I.Imm 1, I.Abs (adq.adq_desc + 2));
    I.Move (I.Abs (adq.adq_desc + 1), I.Reg I.r4);
    I.Alu (I.Add, I.Imm adq.adq_flags, I.r4);
    I.Tst (I.Ind I.r4);
    I.B (I.Ne, I.To_label "adq_race");
  ]
  @ Thread.block_code k adq.adq_consumer_wq ~retry
  @ [
      I.Label "adq_race";
      I.Move (I.Imm 0, I.Abs (adq.adq_desc + 2));
      I.Set_ipl 0;
      I.B (I.Always, I.To_label retry);
    ]
