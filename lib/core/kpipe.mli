(** Pipes (§6.2): a power-of-two word ring with synthesized read/write
    ends per attached thread.  The producer publishes [head] only
    after copying, the consumer publishes [tail] only after copying
    (the SP-SC optimistic discipline); data moves in unrolled 8-word
    bursts; full/empty block through the standard protocol with a
    lost-wakeup guard. *)

type t = {
  p_name : string;
  p_desc : int; (** [0]=head [1]=tail [2]=rwait [3]=wwait [4]=weof *)
  p_buf : int;
  p_cap : int;
  p_readers : Kernel.waitq;
  p_writers : Kernel.waitq;
  mutable p_ends : int;  (** open descriptors; 0 after the last close *)
}

val head_cell : t -> int
val tail_cell : t -> int
val weof_cell : t -> int

val create : Kernel.t -> ?cap:int -> unit -> t

(** Synthesize pipe ends for a thread and install them as
    descriptors; returns (read_fd, write_fd).  Closing the write fd
    marks EOF and wakes readers. *)
val attach : Vfs.t -> t -> Kernel.tte -> int * int

(** Install pipe(2) as trap 11: returns read fd in r0, write fd in
    r1. *)
val install_syscall : Vfs.t -> unit
