(** The Synthesis kernel instance: the simulated machine and its
    devices, the kernel allocator, the thread table, and the registry
    of synthesized code.  The running thread is identified by the
    [Layout.cur_tte_cell] kernel global, which every thread's
    synthesized switch-in code keeps current — host structures mirror
    the machine, they never drive it.

    The records are transparent: subsystem modules are the kernel and
    manipulate them directly. *)

open Quamachine

type thread_state = Ready | Blocked | Stopped | Zombie

(** ksynth: one memoized code page — the unit the synthesis cache
    hands out.  Instantiations with the same key share the page
    (read-only by convention), refcounted by live handles; patching a
    shared page forks a private copy, patching a sole-owner cached
    page detaches it in place ([sp_cached = false]). *)
type synth_page = {
  sp_key : string;  (** cache key; stable across re-instantiations *)
  sp_name : string;  (** name of the first instantiation *)
  sp_kind : string;  (** arena kind (name prefix by default) *)
  mutable sp_entry : int;
  sp_len : int;
  mutable sp_syms : (string * int) list;
  mutable sp_refs : int;  (** live handles *)
  mutable sp_hits : int;
  mutable sp_stamp : int;  (** LRU clock at last use *)
  mutable sp_cached : bool;  (** still reachable through the cache? *)
  sp_pinned : bool;  (** boot-time install: never evicted or released *)
}

(** ksynth: the recipe kept for an evicted page, so a later re-miss on
    the same key resynthesizes from the recorded generator. *)
type synth_recipe = {
  rc_name : string;
  rc_kind : string;
  rc_template : Template.t;
  rc_env : (string * int) list;
}

type tte = {
  tid : int;
  base : int; (** data address of the 256-word TTE block (Figure 3) *)
  map_id : int;
  mutable cpu : int; (** home core: which ready ring it runs on *)
  mutable state : thread_state;
  mutable sw_out : int;
  mutable sw_in : int;
  mutable sw_in_mmu : int;
  mutable jmp_slot : int; (** the ready queue's patchable jmp *)
  mutable quantum_slot : int; (** the scheduler's patchable quantum *)
  mutable uses_fp : bool;
  mutable quantum_us : int;
  mutable rq_next : tte option; (** host mirror of the executable ring *)
  mutable rq_prev : tte option;
  mutable waiting_on : string option;
  mutable owned_blocks : int list;
  mutable owned_pages : int list;
      (** ksynth page entries released at destroy *)
  mutable is_system : bool;
  mutable entry : int;  (** original entry point (crash restart) *)
  mutable ustack : int;
  mutable ustack_words : int;
}

(** A per-resource wait queue (§4.1: no general blocked queue). *)
type waitq = {
  wq_name : string;
  mutable waiters : tte list;
  mutable wq_block_hcall : int;
  mutable wq_unblock_hcall : int;
}

val waitq : name:string -> waitq

(** One entry in the bounded fault log; [f_tid] is 0 for faults not
    attributable to a thread (e.g. a machine double fault); [f_cpu] is
    the core that was executing when the fault was logged. *)
type fault_entry = { f_cycle : int; f_tid : int; f_cpu : int; f_reason : string }

(** kheal: one record per synthesized code region — the generator
    (template + the exact invariant bindings synthesis folded in) and
    a checksum of the installed instructions, enough to detect
    corruption and rebuild the region in place.  [cr_patches] holds
    every legitimate post-synthesis patch (newest first per address)
    so repair restores live values; [cr_mutable] names
    scheduling-state slots that cross-kernel comparison must skip. *)
type code_region = {
  cr_name : string;
  cr_entry : int;
  cr_len : int;
  cr_template : Template.t;
  cr_env : (string * int) list;
  mutable cr_patches : (int * Insn.insn) list;
  mutable cr_mutable : int list;
  mutable cr_checksum : int;
}

type t = {
  machine : Machine.t;
  alloc : Kalloc.t;
  timer : Devices.Timer.t;  (** core 0's quantum timer, [= timers.(0)] *)
  timers : Devices.Timer.t array;  (** per-core quantum timers *)
  alarm : Devices.Timer.t;
  tty : Devices.Tty.t;
  disk : Devices.Disk.t;
  ad : Devices.Ad.t;
  da : Devices.Da.t;
  threads : (int, tte) Hashtbl.t;
  by_base : (int, tte) Hashtbl.t;
  mutable next_tid : int;
  rq_anchors : tte option array;  (** per-core executable ready rings *)
  mutable registry : (string * int * int) list;
  mutable code_regions : code_region list;  (** kheal region table, newest first *)
  mutable synthesized_insns : int;
  codegen_cycles_fixed : int;
  codegen_cycles_per_insn : int;
  default_vectors : int array;
  shared : (string, int) Hashtbl.t;  (** named entries ([Ksynth.lookup]) *)
  synth_cache : (string, synth_page) Hashtbl.t;  (** key → live page *)
  page_index : (int, synth_page) Hashtbl.t;
      (** every code address of every live page (O(1) shared test) *)
  synth_arenas : (string, Kalloc.arena) Hashtbl.t;
  synth_caps : (string, int) Hashtbl.t;
      (** optional per-kind live-word budgets (LRU eviction) *)
  synth_evicted : (string, synth_recipe) Hashtbl.t;
  mutable synth_clock : int;
  mutable pipe_carcasses : (int * int * int * waitq * waitq) list;
      (** recycled (cap, desc, buf, readers, writers): reusing cells
          and wait queues keeps a reopened pipe's code byte-identical,
          which is what lets the synthesis cache hit *)
  idle_threads : tte option array;  (** per-core pinned idle threads *)
  mutable sig_xc : tte list;
      (** threads with a cross-core signal awaiting their home core's
          signal IPI (drained by the boot-installed IPI handler) *)
  mutable fault_log : fault_entry list;  (** newest first, bounded *)
  mutable fault_log_len : int;
  mutable fault_dropped : int;  (** entries evicted by the bound *)
  metrics : Metrics.t;  (** kernel-wide counters/gauges *)
  mutable ktrace : Ktrace.t option;
  mutable restart_hook : (tte -> unit) option;
      (** [Thread.restart], installed at boot *)
  mutable kspan : Kspan.t option;
      (** request-scoped spans; None = never attached *)
  mutable last_postmortem : string option;
      (** most recent {!postmortem} dump *)
}

val create : ?cost:Cost.t -> ?mem_words:int -> ?cores:int -> unit -> t

(** {1 Cores}

    A one-core kernel is byte- and cycle-identical to the uniprocessor
    kernel it replaces; with [create ~cores:n] each core owns a
    quantum timer, an executable ready ring, an idle thread, and a
    private copy of the current-thread kernel cells. *)

val cores : t -> int

(** The core whose instruction (or hcall) is executing. *)
val this_cpu : t -> int

val timer_for : t -> int -> Devices.Timer.t
val anchor : t -> int -> tte option
val set_anchor : t -> int -> tte option -> unit
val idle_of : t -> int -> tte option
val set_idle : t -> int -> tte -> unit

(** Is [t] one of the per-core idle threads? *)
val is_idle : t -> tte -> bool

(** {1 Fault log} *)

(** Maximum entries retained in [fault_log] (oldest evicted first). *)
val fault_log_cap : int

(** Record a fault: prepend a bounded structured entry, bump the
    "kernel.faults_total" counter, and emit [Ktrace.Fault] when a
    trace is attached.  Host-side — charges no simulated cycles. *)
val log_fault : t -> tid:int -> reason:string -> unit

(** Total faults ever logged (survives fault-log eviction). *)
val faults_total : t -> int

(** {1 Tracing}

    With no trace attached every call below is free and synthesized
    code is byte-identical to an untraced kernel. *)

(** Attach: machine hooks, cycle attribution from now on, and owner
    registration for everything synthesized so far and hereafter. *)
val attach_tracing : t -> Ktrace.t -> unit

(** Emit an event if tracing is attached. *)
val trace : t -> Ktrace.kind -> unit

(** Probe fragment for synthesized code; [[]] unless tracing is
    attached and enabled at synthesis time. *)
val trace_probe : t -> Ktrace.kind -> Insn.insn list

val trace_probe_status : t -> (bool -> Ktrace.kind) -> Insn.insn list

(** {1 Spans}

    Request-scoped causal tracing ({!Kspan}).  With no span layer
    attached every call below is free and synthesized code is
    byte-identical to a span-less kernel. *)

(** Attach a span layer sharing the kernel metrics registry and the
    attached trace (attach tracing first if events are wanted).
    [~enabled:false] attaches a disabled layer: probes stay empty, so
    the instruction stream is unchanged. *)
val attach_spans : ?enabled:bool -> t -> Kspan.t

(** Run a host-side span action if a layer is attached; free
    otherwise. *)
val span : t -> (Kspan.t -> unit) -> unit

(** Span probe fragment for synthesized code; [[]] unless a span layer
    is attached and enabled at synthesis time.  Compute outside
    [Template.make] (kheal repair must reproduce identical code). *)
val span_probe : t -> (Kspan.t -> Machine.t -> unit) -> Insn.insn list

(** {1 Flight recorder}

    Assemble the crash black box — last trace events, open spans,
    fault log, kheal registry state, metrics — into one readable dump,
    remembered in [last_postmortem].  Called on double fault, failed
    repair, watchdog escalation, and by the harness when an invariant
    trips; host-side only, charges nothing. *)
val postmortem : ?reason:string -> t -> string

(** {1 Code synthesis}

    [Ksynth.instantiate] is the code-generation API; the functions
    here are the backends underneath it. *)

(** ksynth backend: install an already-optimized body at [at] (an
    arena range of patchable slots), with registry + kheal-region +
    trace bookkeeping.  Charges nothing — the cache prices hits and
    misses.  Returns the absolute symbol table. *)
val install_at :
  t ->
  name:string ->
  at:int ->
  template:Template.t ->
  env:(string * int) list ->
  Insn.insn list ->
  Asm.symbols

(** ksynth backend: drop the registry and kheal records of the page at
    [entry] (freed or evicted). *)
val unregister_region : t -> entry:int -> unit

(** Record a kheal region for code installed outside [install_at]
    (checksums current content). *)
val register_region :
  t ->
  name:string ->
  entry:int ->
  len:int ->
  template:Template.t ->
  env:(string * int) list ->
  unit

(** {1 Threads} *)

val thread : t -> int -> tte option
val thread_exn : t -> int -> tte

(** The thread running on a core ([cpu] defaults to the executing
    core), per that core's cur_tte kernel cell. *)
val current : ?cpu:int -> t -> tte option

val current_exn : ?cpu:int -> t -> tte

(** Rebuild a crashed thread's initial context and reinsert it at the
    front of the ready queue, bumping "kernel.thread_restarts_total"
    (dispatches to [Thread.restart] through the boot-installed hook). *)
val restart_thread : t -> tte -> unit

(** {1 Vector tables} *)

val vector_addr : tte -> int -> int
val set_vector : t -> tte -> int -> int -> unit
val get_vector : t -> tte -> int -> int

(** Set a default vector and propagate to all existing threads. *)
val set_vector_all : t -> int -> int -> unit

(** {1 kheal: code-region audit and repair by resynthesis}

    Kernel code is data the kernel can regenerate: every synthesized
    region is recorded with its template and invariants, corruption is
    detected by checksum mismatch (or a faulting PC inside a region),
    and repair reruns the synthesizer in place.  Detection is
    host-side and free; repair charges the normal code-generation
    cost, bumps "kernel.code_repairs_total", and logs to
    [fault_log]. *)

(** Region containing a code address (e.g. a faulting PC). *)
val find_region : t -> int -> code_region option

(** Newest region registered under [name]. *)
val find_region_by_name : t -> string -> code_region option

(** Does the region's current content disagree with its checksum? *)
val region_dirty : t -> code_region -> bool

(** All regions, oldest first. *)
val code_regions : t -> code_region list

(** Rebuild one region from its template + recorded invariants,
    patch it in place (entries and op slots stay valid), reapply live
    patches, and update the checksum.  [origin] tags the fault-log
    entry ("audit", "trap", "patch"...). *)
val repair_region : ?origin:string -> t -> code_region -> unit

(** Checksum-walk every region and repair the dirty ones; returns the
    number repaired.  Callable from the watchdog — detection charges
    no simulated cycles, each repair charges synthesis cost. *)
val audit_code : ?origin:string -> t -> int

(** The "kernel.code_repairs_total" metric. *)
val code_repairs_total : t -> int

(** Patch one code word through the region table: repairs the owning
    region first if it is already corrupted (a patch must never bless
    corruption into the checksum), records the patch for future
    repairs, and re-checksums.  All legitimate post-synthesis patching
    (ready-ring jmp targets, quantum slots) goes through here.

    ksynth pages: raises [Invalid_argument] if [addr] lies in a page
    shared by several handles (copy-on-patch — [Ksynth.patch] forks a
    private copy instead); a sole-owner cached page silently detaches
    from the cache first, so patched content is never served to a
    fresh instantiation. *)
val patch_code : t -> int -> Insn.insn -> unit

(** Mark a scheduling-state slot (excluded from {!code_state_hash}). *)
val region_mark_mutable : t -> addr:int -> unit

(** Deterministic fingerprint of all regenerable code content, mutable
    slots excluded: identically-booted kernels agree on it, and a
    repaired kernel must converge back to it. *)
val code_state_hash : t -> int

(** {1 Synthesized-code accounting (§6.4)} *)

val registry : t -> (string * int * int) list
val synthesized_insns : t -> int

(** (prefix, routine count, instruction count) per subsystem. *)
val registry_report : t -> (string * int * int) list
