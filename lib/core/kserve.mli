(** kserve: a synthesized network serving stack over the NIC model.

    The server is a stream graph ({!Stream_graph}): an rx pump lifts
    request frames off the card's rx ring into a gauged flow, a switch
    fans them out to workers by connection slot, workers dispatch
    through a per-slot table of service routines, and a tx pump lays
    responses back on the tx ring.  The accept path
    {!Ksynth.instantiate}s the per-connection service routine at open
    time — the file's buffer base, capacity and size cell plus the
    connection's position cell folded in as constants — so a warm
    accept (same slot, same file) is a synthesis-cache hit.

    Spans are minted at rx and closed at tx; with a span layer
    attached ({!Kernel.attach_spans}, before [create]) every request's
    latency lands in the "kspan.serve.total_cycles" histogram.

    Overload handling is a scheduling policy (§3): a controller
    samples the flow gauges each epoch, retunes worker quanta against
    the backlog ({!Ctx.set_quantum}), and past a high watermark arms
    the NIC's admission limit so excess offered load is shed at the rx
    ring rather than queueing without bound.

    {2 Protocol}

    One word per frame: [id:14 | op:3 | arg:15].  A request's [id] is
    the client's connection id for [op_open] (with [arg] = file
    index), the assigned slot otherwise.  Responses echo the slot in
    [id]; an open response carries the connection id (mod 2^15) in
    [arg] so the client can match it.  Reads return the next word of
    the file as a circular stream; writes append and wrap. *)

open Quamachine

val id_shift : int
val op_shift : int
val arg_mask : int
val op_open : int
val op_read : int
val op_write : int
val op_close : int
val op_err : int

(** Ids above this are reserved (16383 would collide with the stream
    layer's EOF sentinel). *)
val max_conn_id : int

val pack : id:int -> op:int -> arg:int -> int
val msg_id : int -> int
val msg_op : int -> int
val msg_arg : int -> int

(** {2 Configuration} *)

type config = {
  cfg_workers : int;  (** power of two *)
  cfg_slots : int;  (** power of two; connection table size *)
  cfg_files : int;  (** power of two; files served *)
  cfg_file_words : int;
  cfg_ring_len : int;  (** power of two; NIC rx/tx ring entries *)
  cfg_queue_size : int;  (** flow capacity, items *)
  cfg_coalesce : int;  (** NIC completions per interrupt *)
  cfg_poll_us : float;  (** NIC service-tick period *)
  cfg_pump_quantum_us : int;
  cfg_worker_quantum_us : int;  (** base; the controller retunes *)
  cfg_worker_quantum_max_us : int;
  cfg_ctl_epoch_us : float;  (** overload-controller sampling period *)
  cfg_admit_hi : int;  (** backlog watermark that arms shedding *)
  cfg_admit_lo : int;  (** backlog watermark that disarms it *)
  cfg_admit_limit : int;  (** rx occupancy admitted while shedding *)
}

val default_config : config

(** The accept-time code template (exposed for inspection). *)
val service_template : Template.t

type t

(** Install the NIC, create the served files (["/srv/<i>"] in the vfs
    name space), build the stream graph, register the accept/close
    host routines, install the overload controller, and start the
    stage threads.  Attach spans to the kernel {e before} [create] if
    request latencies are wanted. *)
val create : ?config:config -> Boot.t -> t

(** {2 Lifecycle} *)

(** Ask the stages to drain: the rx pump forwards EOF and exits, the
    rest of the graph follows. *)
val shutdown : t -> unit

(** Has the tx pump retired an EOF from every worker? *)
val drained : t -> bool

(** Rearm after a drained run: clear the flags and respawn the stage
    threads on their recorded entry points.  Queues, rings, the
    dispatch table and the synthesis cache all carry over, so a warm
    restart's accepts are cache hits and the code footprint stays
    flat. *)
val restart : t -> unit

(** {2 Host-side accept/close} (tests; the exact logic the worker's
    hcalls run, minus the machine). *)

(** Returns the open response word ([msg_op] = [op_err] when
    refused). *)
val host_accept : t -> conn:int -> file:int -> int

val host_close : t -> slot:int -> unit

(** {2 Introspection} *)

type stats = {
  n_accepts : int;
  n_closes : int;
  n_refused : int;  (** opens refused for want of a slot *)
  n_dup_opens : int;
  n_hits : int;  (** accepts served from the synthesis cache *)
  n_misses : int;
  n_retunes : int;  (** controller quantum adjustments *)
  n_responses : int;  (** responses laid on the tx ring *)
  n_shed : int;  (** frames shed at the rx ring while overloaded *)
}

val stats : t -> stats
val nic : t -> Devices.Nic.t
val kernel : t -> Kernel.t
val config : t -> config

(** Items queued across every flow of the graph. *)
val backlog : t -> int

(** Is the admission limit currently armed? *)
val shedding : t -> bool

val open_slots : t -> int
val threads : t -> Kernel.tte list
val worker_ttes : t -> Kernel.tte list
