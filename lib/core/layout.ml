(* Kernel data-memory layout.

   All quaspaces are subspaces of one single address space (§2.1); the
   kernel occupies the low region, user quaspaces are carved out of
   the heap by the allocator and exposed to threads via MMU maps. *)

(* Kernel global cells. *)
let globals_base = 0x100

(* Address of the running thread's context-switch-out routine; kept
   current by every thread's synthesized sw_in code so that shared
   kernel paths can block without knowing which thread runs them. *)
let cur_sw_out_cell = globals_base + 0

(* Data address of the running thread's TTE. *)
let cur_tte_cell = globals_base + 1

(* Tid of the running thread. *)
let cur_tid_cell = globals_base + 2

(* Scratch cell used by procedure chaining. *)
let chain_scratch_cell = globals_base + 3

(* SMP: every core owns a private copy of the four cells above.  Core
   0 keeps the historical addresses (a one-core kernel lays out memory
   byte-identically to the uniprocessor); secondary core [c] gets a
   4-word block in the gap before the fault scratch window — room for
   7 secondaries, matching [Machine.max_cores].  Shared kernel code
   reaches the *executing* core's cells through the MMIO register
   window ([Mmio_map.cur_sw_out] &c); per-thread synthesized code
   binds its home core's cell addresses as invariants. *)
let percpu_cells_base = globals_base + 4

let cur_sw_out_cell_for c =
  if c = 0 then cur_sw_out_cell else percpu_cells_base + (4 * (c - 1))

let cur_tte_cell_for c =
  if c = 0 then cur_tte_cell else percpu_cells_base + (4 * (c - 1)) + 1

let cur_tid_cell_for c =
  if c = 0 then cur_tid_cell else percpu_cells_base + (4 * (c - 1)) + 2

let chain_scratch_cell_for c =
  if c = 0 then chain_scratch_cell else percpu_cells_base + (4 * (c - 1)) + 3

(* kfault scratch: a reserved data window for fault-injection bit
   flips, so tests and explorer subjects aim flips at a Layout-derived
   address instead of hard-coding magic numbers.  Nothing in the
   kernel reads or writes this window. *)
let fault_scratch_base = globals_base + 0x40
let fault_scratch_words = 64

(* Kernel heap managed by [Kalloc]. *)
let heap_base = 0x1000
let heap_limit = 0xE0000

(* Supervisor boot stack (before the first thread exists). *)
let boot_stack_top = 0x1000

(* ksynth: minimum words a per-kind code arena acquires from
   [Machine.reserve_code] when it grows.  Chunky growth keeps the
   patchable-slot reservations coarse enough to recycle. *)
let synth_chunk_words = 256

(* TTE block layout (offsets into a 256-word block ≈ 1 KiB, §6.3). *)
module Tte = struct
  let size_words = 256
  let off_tid = 0
  let off_regs = 1 (* r0..r15 at +1..+16 *)
  let off_sr = 17
  let off_pc = 18
  let off_usp = 19
  let off_map = 20
  let off_quantum = 21
  let off_flags = 22 (* bit 0: uses FP *)
  let off_gauge = 23 (* I/O events counted for fine-grain scheduling *)
  let off_vectors = 24 (* 48 entries: +24 .. +71 *)
  let off_fd_read = 72 (* 32 code addresses: +72 .. +103 *)
  let off_fd_write = 104 (* 32 code addresses: +104 .. +135 *)
  let off_sig_pending = 136
  let off_sig_handler = 137
  let off_sig_inh = 138 (* a signal handler is running *)
  let off_sig_queued = 139 (* deliveries coalesced while handling *)
  let off_kstack = 140 (* kernel stack area: +140 .. +203 *)
  let kstack_words = 64
  let off_fp_save = 204 (* 8 regs * 3 words: +204 .. +227 *)
  let max_fds = 32
end
