(* The quaject creator and interfacer (§2.3).

   A quaject is a collection of procedures and data encapsulating a
   resource.  The *creator* builds one in three stages: allocation
   (kernel memory for the data block and room for code), factorization
   (substitute the quaject's run-time constants into its code
   templates) and optimization (peephole).  The *interfacer* starts
   existing quajects working together in four stages: combination
   (pick the connecting mechanism — procedure call, monitor, queue or
   pump, per the §5.2 case analysis), factorization and optimization
   of the connecting code, and dynamic link (store the synthesized
   entry points into the quajects' operation tables).

   [Ksynth.instantiate] is the factorize+optimize+install engine; this
   module adds the allocation, combination and dynamic-link stages and
   the quaject record itself.  The concrete servers (files, ttys,
   pipes, queues) were built before this vocabulary existed in the
   codebase and call the engine directly; new quajects compose through
   here. *)

open Quamachine

type quaject = {
  qj_name : string;
  qj_data : int; (* the data block *)
  qj_data_words : int;
  (* operation table: named entry points, stored both host-side and in
     the first words of the data block so synthesized code can reach
     them with one indirection *)
  mutable qj_ops : (string * int) list;
}

(* Offset of operation [i] inside the data block's operation table. *)
let op_slot q i = q.qj_data + i

let op_entry q name =
  match List.assoc_opt name q.qj_ops with
  | Some e -> e
  | None -> invalid_arg ("Synthesizer.op_entry: " ^ q.qj_name ^ " has no " ^ name)

(* ---------------------------------------------------------------- *)
(* The creator *)

(* [create k ~name ~data_words ops] — allocation, then per operation
   factorization and optimization.  Each op is (op name, template,
   extra invariants); every template additionally receives "self" (the
   data block address) so quaject code can address its own state. *)
let create k ~name ~data_words ops =
  (* allocation *)
  let data = Kalloc.alloc_zeroed k.Kernel.alloc (max data_words (List.length ops + 4)) in
  let q = { qj_name = name; qj_data = data; qj_data_words = data_words; qj_ops = [] } in
  (* factorization + optimization, one template per operation *)
  List.iteri
    (fun i (op_name, template, env) ->
      let entry =
        Ksynth.entry
          (Ksynth.instantiate k
             ~name:(Printf.sprintf "quaject/%s/%s" name op_name)
             ~template
             ~invariants:(("self", data) :: env))
      in
      q.qj_ops <- (op_name, entry) :: q.qj_ops;
      (* dynamic link of the quaject's own table *)
      Machine.poke k.Kernel.machine (op_slot q i) entry;
      Machine.charge_refs k.Kernel.machine 1)
    ops;
  q

(* Deallocation: drop the quaject's claim on its synthesized operation
   pages (the cache may keep them warm for the next same-shaped
   quaject) and free the data block. *)
let destroy k q =
  List.iter (fun (_, entry) -> Ksynth.release_entry k entry) q.qj_ops;
  q.qj_ops <- [];
  Kalloc.free k.Kernel.alloc q.qj_data

(* ---------------------------------------------------------------- *)
(* The interfacer *)

type connection = {
  cn_connector : Quaject.connector;
  cn_call : int; (* code the producer side invokes (Jsr) *)
  cn_queue : Kqueue.t option; (* present for queued connections *)
}

(* Combination: decide the mechanism for [producer op -> consumer op]
   given the endpoints' activity and multiplicity, then synthesize the
   connecting code and link it.

   - procedure call: the connector is a jump straight to the consumer
     operation (Collapsing Layers: the call boundary disappears);
   - monitored call: the same, bracketed by a monitor's enter/exit;
   - queues: an optimistic queue of the right flavour, with the
     producer-side call being the queue's put. *)
let interface k ~name ~producer ~consumer ~consumer_entry () =
  let connector = Quaject.connect ~producer ~consumer in
  match connector with
  | Quaject.Procedure_call ->
    (* combine: a direct jump; factorize+optimize are trivial and the
       dynamic link is the caller using this entry *)
    let entry, _ =
      Ksynth.install k ~name:(name ^ "/call")
        [ Insn.Jmp (Insn.To_addr consumer_entry) ]
    in
    { cn_connector = connector; cn_call = entry; cn_queue = None }
  | Quaject.Monitored_call ->
    let monitor = Quaject.create_monitor k ~name:(name ^ "/mon") in
    let entry, _ =
      Ksynth.install k ~name:(name ^ "/call")
        [
          Insn.Jsr (Insn.To_addr monitor.Quaject.mon_enter);
          Insn.Jsr (Insn.To_addr consumer_entry);
          Insn.Jsr (Insn.To_addr monitor.Quaject.mon_exit);
          Insn.Rts;
        ]
    in
    { cn_connector = connector; cn_call = entry; cn_queue = None }
  | Quaject.Queue_spsc | Quaject.Queue_mpsc | Quaject.Queue_spmc
  | Quaject.Queue_mpmc ->
    let kind =
      match Kqueue.kind_of_connector connector with
      | Some kd -> kd
      | None -> assert false
    in
    let q = Kqueue.create ~kind k ~name:(name ^ "/q") ~size:64 in
    { cn_connector = connector; cn_call = q.Kqueue.q_put; cn_queue = Some q }
  | Quaject.Pump_thread ->
    invalid_arg
      "Synthesizer.interface: passive-passive connections are built with \
       [pump], which creates the service thread"

(* Pump (§5.2's xclock): both endpoints passive, so a dedicated kernel
   service thread animates the connection — it calls the producer
   operation (result in r0), hands the value to the consumer operation
   (argument in r1), and yields once per transfer so it never starves
   the rest of the ring.  Returns the pump thread. *)
let pump k ~name ~source_entry ~sink_entry =
  let body =
    [
      Insn.Label "loop";
      Insn.Jsr (Insn.To_addr source_entry); (* r0 := producer value *)
      Insn.Move (Insn.Reg Insn.r0, Insn.Reg Insn.r1);
      Insn.Jsr (Insn.To_addr sink_entry); (* consume r1 *)
      Insn.Trap 5; (* yield: one transfer per turn *)
      Insn.B (Insn.Always, Insn.To_label "loop");
    ]
  in
  let entry, _ = Ksynth.install k ~name:(name ^ "/pump") body in
  let t = Thread.create k ~quantum_us:150 ~system:true ~entry () in
  Machine.poke k.Kernel.machine
    (t.Kernel.base + Layout.Tte.off_regs + 16)
    Ctx.kernel_sr;
  t

(* Dynamic link: point a quaject operation slot at new code (e.g. at a
   connection's call entry) — the last stage of the interfacer, and
   the mechanism behind `open` updating fd tables. *)
let relink k q ~slot ~entry =
  Machine.poke k.Kernel.machine (op_slot q slot) entry;
  Machine.charge_refs k.Kernel.machine 1;
  (match List.nth_opt q.qj_ops slot with _ -> ());
  ()
