(** Mergeable log-bucketed cycle histograms (HDR-style).

    Values are non-negative integers (cycles).  Small values (< 16)
    get exact buckets; larger values share 16 sub-buckets per power of
    two, bounding the relative quantile error at 1/16 ≈ 6%.  Counts
    saturate at [max_int] instead of wrapping, so a histogram never
    reports a negative count no matter how long it runs.

    Histograms are plain host-side data: recording never charges
    simulated cycles, so they obey the same discipline as the metrics
    registry they live in ({!Metrics.histogram}). *)

type t

val create : unit -> t

(** [record t v] adds one observation.  Negative values clamp to 0. *)
val record : t -> int -> unit

(** [record_n t v n] adds [n] observations of [v] ([n <= 0] is a
    no-op); bucket counts saturate at [max_int]. *)
val record_n : t -> int -> int -> unit

val count : t -> int

(** Exact smallest / largest recorded value; 0 when empty. *)
val min_value : t -> int

val max_value : t -> int

(** Mean of recorded values (0.0 when empty). *)
val mean : t -> float

(** [quantile t q] for [q] in [0,1]: smallest bucket representative
    with cumulative count >= ceil(q * count), clamped to
    [[min_value, max_value]] (so a single-sample histogram reports
    that exact value at every quantile).  0 when empty. *)
val quantile : t -> float -> int

(** Pointwise saturating sum; inputs are not modified. *)
val merge : t -> t -> t

(** Non-empty buckets as [(representative, count)], ascending. *)
val buckets : t -> (int * int) list

(** Structural equality on bucket counts and min/max/count. *)
val equal : t -> t -> bool

(** "n=… min=… p50=… p90=… p99=… p999=… max=…" *)
val pp : Format.formatter -> t -> unit
