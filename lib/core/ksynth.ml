(* ksynth: the memoizing synthesis cache.

   The cache sits between the templates and the raw synthesis engine
   in [Kernel]: keys are content-addressed (template id + sorted
   invariants + a hash of the optimized body), so two instantiations
   share a page exactly when the code they would generate is
   byte-identical — templates that close over host state (trace
   probes, pipe records, scheduling gauges) disambiguate themselves
   through the body hash without any per-site annotations.

   Pages live in per-kind [Kalloc] arenas whose every word is a
   patchable slot ([Machine.reserve_code]), so installing into a
   recycled range is patching, not appending: the code store stops
   growing once the working set of distinct routines is built, which
   is what makes peak code bytes sublinear in opens.

   The mutation rule is copy-on-patch: [Kernel.patch_code] refuses to
   write into a page with several co-owners (this module's [patch]
   forks a private copy first) and silently detaches a sole-owner
   cached page, so the cache never serves patched content to a fresh
   instantiation.  Eviction (LRU over refcount-zero pages, per-kind
   budgets) records the page's generator as a recipe; a later miss on
   the same key is resynthesis — kheal's repair discipline applied to
   deliberate forgetting. *)

open Quamachine
open Kernel

type handle = { mutable h_page : synth_page; mutable h_live : bool }

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_resynth : int;
  st_cached_pages : int;
  st_footprint_words : int;
  st_live_words : int;
}

(* Probing the cache is a hash lookup plus a refcount bump — priced
   like the allocator's fast path, not like running the synthesizer. *)
let hit_cycles = 30

(* Recipes of evicted pages are bounded: a workload that churns
   through unbounded distinct keys must not grow an unbounded table. *)
let recipe_cap = 512

(* ------------------------------------------------------------------ *)
(* Keys *)

(* Per-instruction folding: [Hashtbl.hash] on a whole instruction list
   only inspects a bounded prefix, so fold instruction by instruction
   (each insn is a small constructor tree it hashes fully). *)
let body_hash insns =
  List.fold_left
    (fun h i -> ((h * 16777619) lxor Hashtbl.hash i) land max_int)
    0x811C9DC5 insns

let key_of ~id ~env h =
  Printf.sprintf "%s|%s#%x" id
    (String.concat ";"
       (List.map
          (fun (p, v) -> p ^ "=" ^ string_of_int v)
          (List.sort compare env)))
    h

(* Arena kind: the registry's subsystem prefix ("pipe/...", "ctx/..."),
   so related routines recycle each other's ranges. *)
let kind_of name =
  match String.index_opt name '/' with
  | Some i -> String.sub name 0 i
  | None -> name

(* ------------------------------------------------------------------ *)
(* Arenas and footprint *)

let arena_for k kind =
  match Hashtbl.find_opt k.synth_arenas kind with
  | Some a -> a
  | None ->
    let a =
      Kalloc.arena k.alloc ~name:kind ~chunk:Layout.synth_chunk_words
        ~grow:(fun n -> Machine.reserve_code k.machine n)
        ()
    in
    Hashtbl.replace k.synth_arenas kind a;
    a

let footprint_words k =
  Hashtbl.fold (fun _ a acc -> acc + Kalloc.arena_total_words a) k.synth_arenas 0

let live_words k =
  Hashtbl.fold (fun _ a acc -> acc + Kalloc.arena_live_words a) k.synth_arenas 0

let note_peak k =
  let bytes = float_of_int (4 * footprint_words k) in
  let g = Metrics.gauge k.metrics Metrics.code_bytes_peak in
  if bytes > Metrics.gauge_value g then Metrics.set_gauge g bytes

let tick k =
  k.synth_clock <- k.synth_clock + 1;
  k.synth_clock

(* ------------------------------------------------------------------ *)
(* Page bookkeeping *)

let index_page k p =
  for a = p.sp_entry to p.sp_entry + p.sp_len - 1 do
    Hashtbl.replace k.page_index a p
  done

let deindex_page k p =
  for a = p.sp_entry to p.sp_entry + p.sp_len - 1 do
    Hashtbl.remove k.page_index a
  done

(* Return a dead page's storage to its arena and forget its records
   (its recipe, if evicted, survives in [synth_evicted]). *)
let free_page k p =
  deindex_page k p;
  Kernel.unregister_region k ~entry:p.sp_entry;
  Kalloc.unshare k.alloc ~base:p.sp_entry;
  Kalloc.arena_free (arena_for k p.sp_kind) p.sp_entry

(* Remember an evicted page's generator so a later miss on the same
   key resynthesizes instead of building cold. *)
let record_recipe k p =
  match Kernel.find_region k p.sp_entry with
  | None -> ()
  | Some r ->
    if
      Hashtbl.length k.synth_evicted >= recipe_cap
      && not (Hashtbl.mem k.synth_evicted p.sp_key)
    then begin
      (* bounded table: drop one (arbitrary) old recipe *)
      match
        Hashtbl.fold
          (fun key _ acc -> match acc with None -> Some key | s -> s)
          k.synth_evicted None
      with
      | Some victim -> Hashtbl.remove k.synth_evicted victim
      | None -> ()
    end;
    Hashtbl.replace k.synth_evicted p.sp_key
      {
        rc_name = p.sp_name;
        rc_kind = p.sp_kind;
        rc_template = r.cr_template;
        rc_env = r.cr_env;
      }

(* Evict the least-recently-used unreferenced cached page of [kind];
   false when none qualifies (everything still has handles). *)
let evict_lru k kind =
  let victim =
    Hashtbl.fold
      (fun _ p best ->
        if p.sp_kind = kind && p.sp_refs = 0 && p.sp_cached && not p.sp_pinned
        then
          match best with
          | Some b when b.sp_stamp <= p.sp_stamp -> best
          | _ -> Some p
        else best)
      k.synth_cache None
  in
  match victim with
  | None -> false
  | Some p ->
    record_recipe k p;
    Hashtbl.remove k.synth_cache p.sp_key;
    p.sp_cached <- false;
    free_page k p;
    Metrics.bump k.metrics Metrics.synth_cache_evictions;
    true

let rec enforce_cap k kind =
  match (Hashtbl.find_opt k.synth_caps kind, Hashtbl.find_opt k.synth_arenas kind) with
  | Some cap, Some a when Kalloc.arena_live_words a > cap ->
    if evict_lru k kind then enforce_cap k kind
  | _ -> ()

let set_cap k ~kind words =
  Hashtbl.replace k.synth_caps kind words;
  enforce_cap k kind

(* ------------------------------------------------------------------ *)
(* Miss path: full synthesis into an arena range *)

let miss k ~name ~kind ~key ~template ~env optimized =
  let n = Asm.length optimized in
  Machine.charge k.machine (k.codegen_cycles_fixed + (n * k.codegen_cycles_per_insn));
  Metrics.bump k.metrics Metrics.synth_cache_misses;
  (match Hashtbl.find_opt k.synth_evicted key with
  | Some _ ->
    Hashtbl.remove k.synth_evicted key;
    Metrics.bump k.metrics Metrics.synth_cache_resynth
  | None -> ());
  let entry = Kalloc.arena_alloc (arena_for k kind) n in
  let syms = Kernel.install_at k ~name ~at:entry ~template ~env optimized in
  let p =
    {
      sp_key = key;
      sp_name = name;
      sp_kind = kind;
      sp_entry = entry;
      sp_len = n;
      sp_syms = syms;
      sp_refs = 1;
      sp_hits = 0;
      sp_stamp = tick k;
      sp_cached = true;
      sp_pinned = false;
    }
  in
  Kalloc.share k.alloc ~base:entry ~len:n;
  index_page k p;
  (* key collision with a live page can only follow a hash collision;
     detach the old page rather than orphan the new one *)
  (match Hashtbl.find_opt k.synth_cache key with
  | Some old -> old.sp_cached <- false
  | None -> ());
  Hashtbl.replace k.synth_cache key p;
  note_peak k;
  enforce_cap k kind;
  p

(* ------------------------------------------------------------------ *)
(* Copy-on-patch *)

(* Fork a private copy of [h]'s page: resynthesize the region's
   generator at a fresh arena range (full generation cost — a fork is
   a synthesis), carry the live patches and mutable-slot marks across,
   drop the claim on the source, repoint the handle. *)
let fork k h =
  let p = h.h_page in
  let r =
    match Kernel.find_region k p.sp_entry with
    | Some r -> r
    | None -> invalid_arg ("Ksynth.patch: no region for page " ^ p.sp_name)
  in
  let optimized =
    Peephole.optimize (Template.instantiate r.cr_template ~env:r.cr_env)
  in
  let n = Asm.length optimized in
  Machine.charge k.machine (k.codegen_cycles_fixed + (n * k.codegen_cycles_per_insn));
  let entry = Kalloc.arena_alloc (arena_for k p.sp_kind) n in
  let name = p.sp_name ^ "#fork" in
  let syms =
    Kernel.install_at k ~name ~at:entry ~template:r.cr_template ~env:r.cr_env
      optimized
  in
  let fp =
    {
      p with
      sp_key = p.sp_key ^ "#fork";
      sp_name = name;
      sp_entry = entry;
      sp_len = n;
      sp_syms = syms;
      sp_refs = 1;
      sp_hits = 0;
      sp_stamp = tick k;
      sp_cached = false;
      sp_pinned = false;
    }
  in
  Kalloc.share k.alloc ~base:entry ~len:n;
  index_page k fp;
  let delta = entry - p.sp_entry in
  List.iter
    (fun (addr, insn) -> Kernel.patch_code k (addr + delta) insn)
    (List.rev r.cr_patches);
  List.iter
    (fun addr -> Kernel.region_mark_mutable k ~addr:(addr + delta))
    r.cr_mutable;
  note_peak k;
  p.sp_refs <- p.sp_refs - 1;
  ignore (Kalloc.release k.alloc ~base:p.sp_entry);
  if p.sp_refs = 0 && (not p.sp_cached) && not p.sp_pinned then free_page k p;
  h.h_page <- fp

let patch k h ~off insn =
  if not h.h_live then invalid_arg "Ksynth.patch: released handle";
  if h.h_page.sp_refs > 1 then fork k h;
  Kernel.patch_code k (h.h_page.sp_entry + off) insn

(* ------------------------------------------------------------------ *)
(* The entry point *)

let release_page k p =
  if not p.sp_pinned then begin
    p.sp_refs <- max 0 (p.sp_refs - 1);
    ignore (Kalloc.release k.alloc ~base:p.sp_entry);
    if p.sp_refs = 0 then
      if not p.sp_cached then free_page k p
      else begin
        p.sp_stamp <- tick k;
        enforce_cap k p.sp_kind
      end
  end

let instantiate ?name ?kind ?(patches = []) k ~template ~invariants =
  let name = match name with Some n -> n | None -> Template.id template in
  let kind = match kind with Some s -> s | None -> kind_of name in
  (* Instantiation and optimization are host-side and free in
     simulated cycles; only installing new code is charged.  Running
     them unconditionally is what lets the key see the body. *)
  let optimized =
    Peephole.optimize (Template.instantiate template ~env:invariants)
  in
  let key = key_of ~id:(Template.id template) ~env:invariants (body_hash optimized) in
  let page =
    match Hashtbl.find_opt k.synth_cache key with
    | Some p when p.sp_len = Asm.length optimized ->
      p.sp_refs <- p.sp_refs + 1;
      ignore (Kalloc.retain k.alloc ~base:p.sp_entry);
      p.sp_hits <- p.sp_hits + 1;
      p.sp_stamp <- tick k;
      Machine.charge k.machine hit_cycles;
      Metrics.bump k.metrics Metrics.synth_cache_hits;
      p
    | _ -> miss k ~name ~kind ~key ~template ~env:invariants optimized
  in
  let h = { h_page = page; h_live = true } in
  List.iter (fun (off, insn) -> patch k h ~off insn) patches;
  h

(* Boot-time shared code: append-path (pinned pages are never
   recycled, so arena slots would be wasted on them), uncharged, and
   registered in the kernel's name directory. *)
let install k ~name insns =
  let optimized = Peephole.optimize insns in
  let key = Printf.sprintf "!%s#%x" name (body_hash optimized) in
  match Hashtbl.find_opt k.synth_cache key with
  | Some p ->
    p.sp_hits <- p.sp_hits + 1;
    p.sp_stamp <- tick k;
    Metrics.bump k.metrics Metrics.synth_cache_hits;
    (p.sp_entry, p.sp_syms)
  | None ->
    let n = Asm.length optimized in
    let entry, syms = Asm.assemble k.machine optimized in
    Hashtbl.replace k.shared name entry;
    k.registry <- (name, entry, n) :: k.registry;
    (* no run-time invariants: the region's generator is a closed
       template over the optimized body *)
    Kernel.register_region k ~name ~entry ~len:n
      ~template:(Template.make ~name ~params:[] (fun _ -> optimized))
      ~env:[];
    (match k.ktrace with
    | Some tr ->
      ignore (Ktrace.register_owner tr ~name ~entry ~len:n);
      Ktrace.emit tr (Ktrace.Synthesized (name, n))
    | None -> ());
    let p =
      {
        sp_key = key;
        sp_name = name;
        sp_kind = "shared";
        sp_entry = entry;
        sp_len = n;
        sp_syms = syms;
        sp_refs = 1;
        sp_hits = 0;
        sp_stamp = tick k;
        sp_cached = true;
        sp_pinned = true;
      }
    in
    Kalloc.share k.alloc ~base:entry ~len:n;
    index_page k p;
    Hashtbl.replace k.synth_cache key p;
    (entry, syms)

(* ------------------------------------------------------------------ *)
(* Named entries *)

let lookup k name =
  match Hashtbl.find_opt k.shared name with
  | Some a -> a
  | None -> invalid_arg ("Ksynth.lookup: unknown " ^ name)

let lookup_opt k name = Hashtbl.find_opt k.shared name
let register k ~name entry = Hashtbl.replace k.shared name entry
let mem k name = Hashtbl.mem k.shared name

(* ------------------------------------------------------------------ *)
(* Handles *)

let entry h = h.h_page.sp_entry
let syms h = h.h_page.sp_syms
let sym h name = Asm.symbol h.h_page.sp_syms name
let refs h = h.h_page.sp_refs
let name h = h.h_page.sp_name
let page h = h.h_page
let key h = h.h_page.sp_key

let release k h =
  if h.h_live then begin
    h.h_live <- false;
    release_page k h.h_page
  end

let release_entry k addr =
  match Hashtbl.find_opt k.page_index addr with
  | Some p -> release_page k p
  | None -> () (* append-path or pinned-adjacent code: nothing to release *)

(* ------------------------------------------------------------------ *)
(* Resynthesis from recipes *)

let revive k key =
  match Hashtbl.find_opt k.synth_evicted key with
  | None -> None
  | Some rc ->
    Some
      (instantiate k ~name:rc.rc_name ~kind:rc.rc_kind ~template:rc.rc_template
         ~invariants:rc.rc_env)

(* ------------------------------------------------------------------ *)
(* Introspection *)

let stats k =
  {
    st_hits = Metrics.read k.metrics Metrics.synth_cache_hits;
    st_misses = Metrics.read k.metrics Metrics.synth_cache_misses;
    st_evictions = Metrics.read k.metrics Metrics.synth_cache_evictions;
    st_resynth = Metrics.read k.metrics Metrics.synth_cache_resynth;
    st_cached_pages = Hashtbl.length k.synth_cache;
    st_footprint_words = footprint_words k;
    st_live_words = live_words k;
  }
