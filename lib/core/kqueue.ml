(* Synthesized kernel queues (Figures 1 and 2).

   Most Synthesis kernel data structures are queues; once queue
   operations synchronize without locking, most of the kernel runs
   without locking (§3.2).  These templates generate the queue code
   with the descriptor addresses folded in.  The generated routines
   are kernel subroutines: item in r1, status returned in r0
   (1 = done, 0 = would block), clobbering r4..r7.

   The MP-SC put is the paper's measured path: 11 instructions on the
   68020 for the normal case, ~20 with one CAS retry.  The benchmark
   suite counts the executed instructions of our generated code and
   reports them next to the paper's numbers. *)

open Quamachine
module I = Insn

type kind = Spsc | Mpsc | Spmc | Mpmc

(* What a put does when the queue is full.  [Fail] is the bare
   generated code: r0 = 0 and the caller deals with it.  The other two
   make the policy explicit at creation instead of leaving every call
   site to improvise. *)
type overflow = Drop | Block | Fail

type t = {
  q_kind : kind;
  q_name : string;
  q_desc : int; (* [desc]=head, [desc+1]=tail *)
  q_buf : int;
  q_flag : int; (* flag array base (MP-SC); 0 for SP-SC *)
  q_size : int;
  q_put : int; (* code entries *)
  q_get : int;
  q_put_many : int; (* 0 when absent *)
  q_overflow : overflow;
  q_dropped_cell : int; (* data cell counting dropped items; 0 unless Drop *)
}

let head_cell q = q.q_desc
let tail_cell q = q.q_desc + 1

(* ---------------------------------------------------------------- *)
(* Templates *)

(* Figure 1, Q_put: publish the item before advancing Q_head, so the
   consumer never sees a half-written slot. *)
let spsc_put_template =
  Template.make ~name:"spsc_put" ~params:[ "head"; "tail"; "buf"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4); (* h *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5); (* next(h) *)
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5); (* next(h) = tail -> full *)
        I.B (I.Eq, I.To_label "full");
        I.Alu (I.Add, I.Imm (p "buf"), I.r4);
        I.Move (I.Reg I.r1, I.Ind I.r4); (* fill slot *)
        I.Move (I.Reg I.r5, I.Abs (p "head")); (* publish last *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* Figure 1, Q_get. *)
let spsc_get_template =
  Template.make ~name:"spsc_get" ~params:[ "head"; "tail"; "buf"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "tail"), I.Reg I.r4); (* t *)
        I.Cmp (I.Abs (p "head"), I.Reg I.r4);
        I.B (I.Eq, I.To_label "empty");
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5);
        I.Move (I.Ind I.r5, I.Reg I.r1); (* take item *)
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm (p "size"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nowrap";
        I.Move (I.Reg I.r4, I.Abs (p "tail")); (* free slot last *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* Slot-flag states shared by all multi-producer/multi-consumer
   queues.  The kfault interleaving explorer found the original
   claim-by-CAS-on-the-index protocol unsound under preemption: a
   claimant descheduled between its index CAS and its flag update
   leaves a stale flag that, one ring lap later, double-delivers the
   slot (consumer side) or overwrites an unconsumed item via index ABA
   (producer side).  The hardened protocol claims the slot *flag*
   first — CAS 0->3 to write, CAS 1->2 to read — then validates the
   index and backs the claim out if it was stale.  While a claim is
   held the ring wedges at that slot, so the index provably cannot lap
   it: the validation read is conclusive and the index advance needs
   no CAS (the claimant owns that transition). *)
let fl_free = 0 (* drained: the producer may fill it *)

let fl_full = 1 (* published: the consumer may drain it *)
let fl_reading = 2 (* claimed by a consumer, not yet drained *)
let fl_writing = 3 (* claimed by a producer, not yet published *)

(* MP put (single-item, any number of consumers): claim the head
   slot's flag (0 -> 3), validate Q_head, advance it, fill, publish
   (flag := 1).  Figure 2 with H = 1, hardened as above.  A failed CAS
   leaves r6 holding the observed flag (68020 CAS semantics), which
   only the full/busy exit consumes. *)
let mp_put_body p =
  [
    I.Label "retry";
    I.Move (I.Abs (p "head"), I.Reg I.r4); (* h *)
    I.Move (I.Reg I.r4, I.Reg I.r5);
    I.Alu (I.Add, I.Imm (p "flag"), I.r5); (* r5 = &flag[h] *)
    I.Move (I.Imm fl_free, I.Reg I.r6);
    I.Move (I.Imm fl_writing, I.Reg I.r7);
    I.Cas (I.r6, I.r7, I.Ind I.r5); (* claim the slot *)
    I.B (I.Ne, I.To_label "busy"); (* lapped (full) or being written *)
    I.Cmp (I.Abs (p "head"), I.Reg I.r4);
    I.B (I.Ne, I.To_label "stale"); (* head moved first: not our slot *)
    I.Move (I.Reg I.r4, I.Reg I.r6);
    I.Alu (I.Add, I.Imm 1, I.r6);
    I.Cmp (I.Imm (p "size"), I.Reg I.r6);
    I.B (I.Ne, I.To_label "nowrap");
    I.Move (I.Imm 0, I.Reg I.r6);
    I.Label "nowrap";
    I.Cmp (I.Abs (p "tail"), I.Reg I.r6);
    I.B (I.Eq, I.To_label "unclaim_full");
    I.Move (I.Reg I.r6, I.Abs (p "head")); (* we own this transition *)
    I.Move (I.Reg I.r4, I.Reg I.r6);
    I.Alu (I.Add, I.Imm (p "buf"), I.r6);
    I.Move (I.Reg I.r1, I.Ind I.r6); (* fill *)
    I.Move (I.Imm fl_full, I.Ind I.r5); (* publish *)
    I.Move (I.Imm 1, I.Reg I.r0);
    I.Rts;
    I.Label "stale";
    I.Move (I.Imm fl_free, I.Ind I.r5); (* back out, take a fresh head *)
    I.B (I.Always, I.To_label "retry");
    I.Label "unclaim_full";
    I.Move (I.Imm fl_free, I.Ind I.r5);
    I.Label "busy";
    I.Move (I.Imm 0, I.Reg I.r0);
    I.Rts;
  ]

let mpsc_put_template =
  Template.make ~name:"mpsc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    mp_put_body

(* MP-SC get: the single consumer trusts only the flags.  The flag
   must equal [fl_full] exactly — a producer descheduled mid-write
   leaves [fl_writing], whose buffer word is not yet valid. *)
let mpsc_get_template =
  Template.make ~name:"mpsc_get" ~params:[ "tail"; "buf"; "flag"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "tail"), I.Reg I.r4);
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Cmp (I.Imm fl_full, I.Ind I.r5);
        I.B (I.Ne, I.To_label "empty");
        I.Move (I.Imm 0, I.Ind I.r5); (* consume the flag *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5);
        I.Move (I.Ind I.r5, I.Reg I.r1);
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm (p "size"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nowrap";
        I.Move (I.Reg I.r4, I.Abs (p "tail"));
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* Figure 2 proper: atomic insert of r3 items read from (r2)+.  Either
   claims space for the whole burst or fails without side effects.
   The head slot's flag claim is the producers' mutex: while we hold
   it no other producer can pass slot h, so the space check, the head
   advance, and the burst fill are all safely ours. *)
let mpsc_put_many_template =
  Template.make ~name:"mpsc_put_many"
    ~params:[ "head"; "tail"; "buf"; "flag"; "size" ] (fun p ->
      let size = p "size" in
      [
        I.Label "retry";
        I.Move (I.Abs (p "head"), I.Reg I.r4); (* h *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5); (* r5 = &flag[h] *)
        I.Move (I.Imm fl_free, I.Reg I.r6);
        I.Move (I.Imm fl_writing, I.Reg I.r7);
        I.Cas (I.r6, I.r7, I.Ind I.r5); (* claim the head slot *)
        I.B (I.Ne, I.To_label "full"); (* lapped or being written *)
        I.Cmp (I.Abs (p "head"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "stale");
        (* SpaceLeft(h): (tail - h - 1 + size) adjusted into range *)
        I.Move (I.Abs (p "tail"), I.Reg I.r6);
        I.Alu (I.Sub, I.Reg I.r4, I.r6);
        I.Alu (I.Add, I.Imm (size - 1), I.r6);
        I.Cmp (I.Imm size, I.Reg I.r6);
        I.B (I.Lt, I.To_label "nomod");
        I.Alu (I.Sub, I.Imm size, I.r6);
        I.Label "nomod";
        I.Cmp (I.Reg I.r3, I.Reg I.r6); (* space - H *)
        I.B (I.Cs, I.To_label "unclaim_full"); (* space < H *)
        (* hi = AddWrap(h, H); the claim makes the transition ours *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Reg I.r3, I.r6);
        I.Cmp (I.Imm size, I.Reg I.r6);
        I.B (I.Lt, I.To_label "nowrap");
        I.Alu (I.Sub, I.Imm size, I.r6);
        I.Label "nowrap";
        I.Move (I.Reg I.r6, I.Abs (p "head"));
        (* fill the claimed slots, publishing each in order (slot h's
           flag goes 3 -> 1 on its turn, releasing waiting peers) *)
        I.Move (I.Reg I.r3, I.Reg I.r7);
        I.Alu (I.Sub, I.Imm 1, I.r7);
        I.Label "fill";
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Post_inc I.r2, I.Ind I.r6);
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "flag"), I.r6);
        I.Move (I.Imm fl_full, I.Ind I.r6);
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm size, I.Reg I.r4);
        I.B (I.Ne, I.To_label "nf");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nf";
        I.Dbra (I.r7, I.To_label "fill");
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "stale";
        I.Move (I.Imm fl_free, I.Ind I.r5);
        I.B (I.Always, I.To_label "retry");
        I.Label "unclaim_full";
        I.Move (I.Imm fl_free, I.Ind I.r5);
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* MC get (any number of producers): consumers race on the tail
   slot's *flag* with CAS (1 -> 2), validate Q_tail, advance it, read,
   then release the slot to the producer (flag := 0).  Claiming the
   publication itself (not the index) means a consumer descheduled
   mid-read leaves the slot visibly claimed: peers see flag=2 and
   wait, the producer sees flag<>0 and waits — nobody can consume it
   twice or overwrite it (§3.2, hardened; see the state table above). *)
let spmc_get_template =
  Template.make ~name:"spmc_get" ~params:[ "tail"; "buf"; "flag"; "size" ] (fun p ->
      [
        I.Label "retry";
        I.Move (I.Abs (p "tail"), I.Reg I.r4); (* t *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5); (* r5 = &flag[t] *)
        I.Move (I.Imm fl_full, I.Reg I.r6);
        I.Move (I.Imm fl_reading, I.Reg I.r7);
        I.Cas (I.r6, I.r7, I.Ind I.r5); (* claim the publication *)
        I.B (I.Ne, I.To_label "empty"); (* unpublished, or claimant mid-read *)
        I.Cmp (I.Abs (p "tail"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "stale"); (* tail moved first: not our slot *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm 1, I.r6);
        I.Cmp (I.Imm (p "size"), I.Reg I.r6);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r6);
        I.Label "nowrap";
        I.Move (I.Reg I.r6, I.Abs (p "tail")); (* we own this transition *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Ind I.r6, I.Reg I.r1); (* read *)
        I.Move (I.Imm fl_free, I.Ind I.r5); (* release to the producer *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "stale";
        I.Move (I.Imm fl_full, I.Ind I.r5); (* give the claim back *)
        I.B (I.Always, I.To_label "retry");
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* SP-MC put: the single producer writes only slots whose flag has
   been cleared by the consumer that drained them. *)
let spmc_put_template =
  Template.make ~name:"spmc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4);
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Ne, I.To_label "full"); (* slot still being read *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5);
        I.B (I.Eq, I.To_label "full");
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Reg I.r1, I.Ind I.r6); (* fill *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "flag"), I.r6);
        I.Move (I.Imm 1, I.Ind I.r6); (* publish *)
        I.Move (I.Reg I.r5, I.Abs (p "head"));
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* ---------------------------------------------------------------- *)
(* Creation *)

(* Queue routines go through the synthesis cache: distinct queues fold
   distinct descriptor/buffer addresses in and miss, but a queue
   rebuilt over recycled cells hits and shares the page. *)
let synth_cached k ~name ~env template =
  let h = Ksynth.instantiate k ~name ~template ~invariants:env in
  (Ksynth.entry h, Ksynth.syms h)

let alloc_common k ~name ~size ~with_flags =
  let alloc = k.Kernel.alloc in
  let desc = Kalloc.alloc_zeroed alloc 16 in
  let buf = Kalloc.alloc_zeroed alloc size in
  let flag = if with_flags then Kalloc.alloc_zeroed alloc size else 0 in
  ignore name;
  (desc, buf, flag)

let create_spsc_impl k ~name ~size =
  let desc, buf, _ = alloc_common k ~name ~size ~with_flags:false in
  let env =
    [ ("head", desc); ("tail", desc + 1); ("buf", buf); ("size", size) ]
  in
  let put, _ = synth_cached k ~name:(name ^ "/put") ~env spsc_put_template in
  let get, _ = synth_cached k ~name:(name ^ "/get") ~env spsc_get_template in
  {
    q_kind = Spsc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = 0;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
    q_overflow = Fail;
    q_dropped_cell = 0;
  }

let create_mpsc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = synth_cached k ~name:(name ^ "/put") ~env mpsc_put_template in
  let get, _ = synth_cached k ~name:(name ^ "/get") ~env mpsc_get_template in
  let put_many, _ =
    synth_cached k ~name:(name ^ "/put_many") ~env mpsc_put_many_template
  in
  {
    q_kind = Mpsc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = put_many;
    q_overflow = Fail;
    q_dropped_cell = 0;
  }

let create_spmc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = synth_cached k ~name:(name ^ "/put") ~env spmc_put_template in
  let get, _ = synth_cached k ~name:(name ^ "/get") ~env spmc_get_template in
  {
    q_kind = Spmc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
    q_overflow = Fail;
    q_dropped_cell = 0;
  }

(* MP-MC put: the flag-claim protocol already proves the slot free
   before any index moves (a consumer still reading holds flag=2, a
   lapped slot holds flag=1), so the multi-consumer case is the same
   code as the MP-SC put. *)
let mpmc_put_template =
  Template.make ~name:"mpmc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    mp_put_body

(* MP-MC: flag-guarded CAS claims at both ends. *)
let create_mpmc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = synth_cached k ~name:(name ^ "/put") ~env mpmc_put_template in
  let get, _ = synth_cached k ~name:(name ^ "/get") ~env spmc_get_template in
  {
    q_kind = Mpmc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
    q_overflow = Fail;
    q_dropped_cell = 0;
  }

(* ---------------------------------------------------------------- *)
(* The unified entry point.

   [create ?kind] picks the synchronization discipline explicitly, or
   — when [kind] is omitted — derives it from the participant counts
   through the quaject interfacer's case table (§5.2): a queue always
   joins two active ends, so the connector chosen for the given
   multiplicities names the queue kind. *)

let kind_of_connector = function
  | Quaject.Queue_spsc -> Some Spsc
  | Quaject.Queue_mpsc -> Some Mpsc
  | Quaject.Queue_spmc -> Some Spmc
  | Quaject.Queue_mpmc -> Some Mpmc
  | Quaject.Procedure_call | Quaject.Monitored_call | Quaject.Pump_thread -> None

let kind_for ~producers ~consumers =
  let mult n = if n > 1 then Quaject.Multiple else Quaject.Single in
  let connector =
    Quaject.connect
      ~producer:{ Quaject.end_ = Quaject.Active; mult = mult producers }
      ~consumer:{ Quaject.end_ = Quaject.Active; mult = mult consumers }
  in
  match kind_of_connector connector with
  | Some kd -> kd
  | None -> assert false (* active/active always yields a queue *)

(* When tracing is enabled at synthesis time, wrap an entry so each
   call emits a Queue_put/Queue_get event carrying the r0 status.
   Without tracing the entry is returned untouched and no code is
   generated. *)
let traced_entry k ~qname ~op entry =
  let event ok =
    match op with
    | `Put -> Ktrace.Queue_put (qname, ok)
    | `Get -> Ktrace.Queue_get (qname, ok)
  in
  match Kernel.trace_probe_status k event with
  | [] -> entry
  | probe ->
    let suffix = match op with `Put -> "/traced_put" | `Get -> "/traced_get" in
    fst
      (Ksynth.install k ~name:(qname ^ suffix)
         ((I.Jsr (I.To_addr entry) :: probe) @ [ I.Rts ]))

(* When spans are enabled at synthesis time, wrap an entry so each
   successful call carries the item's span across the queue: put opens
   a span and parks it in the (queue, index) side-table, get pops and
   closes it.  Wraps the *bare* entries, inside any overflow policy,
   so the probe sees the honest slot status — an item discarded by a
   Drop queue never opens a span it could leak. *)
let span_entry k ~qname ~qdesc ~op entry =
  let action sp m =
    if Machine.get_reg m I.r0 <> 0 then
      match op with
      | `Put -> Kspan.queue_put sp ~queue:qdesc ~pipeline:qname ~detail:qname
      | `Get -> Kspan.queue_take sp ~queue:qdesc
  in
  match Kernel.span_probe k action with
  | [] -> entry
  | probe ->
    let suffix = match op with `Put -> "/span_put" | `Get -> "/span_get" in
    fst
      (Ksynth.install k ~name:(qname ^ suffix)
         ((I.Jsr (I.To_addr entry) :: probe) @ [ I.Rts ]))

(* Overflow wrappers: synthesized prologues around the bare put entry
   that implement the queue's creation-time policy.  The bare put
   reads r1 without modifying it, so calling it again (Block) or
   falling through (Drop) is safe. *)

(* Drop: a full queue discards the item, counts it in [cell], and
   still reports success — the producer never stalls (a tty that drops
   keystrokes rather than wedging the interrupt path). *)
let drop_put_wrapper ~entry ~cell =
  [
    I.Jsr (I.To_addr entry);
    I.Tst (I.Reg I.r0);
    I.B (I.Ne, I.To_label "done");
    I.Alu_mem (I.Add, I.Imm 1, I.Abs cell);
    I.Move (I.Imm 1, I.Reg I.r0);
    I.Label "done";
    I.Rts;
  ]

(* Block: spin until the consumer frees a slot.  Correct only when
   something else (an interrupt-driven consumer, a preempting thread)
   can drain the queue out from under the spinner. *)
let block_put_wrapper ~entry =
  [
    I.Label "retry";
    I.Jsr (I.To_addr entry);
    I.Tst (I.Reg I.r0);
    I.B (I.Eq, I.To_label "retry");
    I.Rts;
  ]

let create ?kind ?(producers = 1) ?(consumers = 1) ?(overflow = Fail) k ~name
    ~size =
  let kind =
    match kind with Some kd -> kd | None -> kind_for ~producers ~consumers
  in
  let q =
    match kind with
    | Spsc -> create_spsc_impl k ~name ~size
    | Mpsc -> create_mpsc_impl k ~name ~size
    | Spmc -> create_spmc_impl k ~name ~size
    | Mpmc -> create_mpmc_impl k ~name ~size
  in
  let q =
    {
      q with
      q_put = span_entry k ~qname:name ~qdesc:q.q_desc ~op:`Put q.q_put;
      q_get = span_entry k ~qname:name ~qdesc:q.q_desc ~op:`Get q.q_get;
    }
  in
  let put, dropped_cell =
    match overflow with
    | Fail -> (q.q_put, 0)
    | Drop ->
      let cell = Kalloc.alloc_zeroed k.Kernel.alloc 1 in
      let entry, _ =
        Ksynth.install k ~name:(name ^ "/drop_put")
          (drop_put_wrapper ~entry:q.q_put ~cell)
      in
      (entry, cell)
    | Block ->
      let entry, _ =
        Ksynth.install k ~name:(name ^ "/block_put")
          (block_put_wrapper ~entry:q.q_put)
      in
      (entry, 0)
  in
  {
    q with
    q_overflow = overflow;
    q_dropped_cell = dropped_cell;
    q_put = traced_entry k ~qname:name ~op:`Put put;
    q_get = traced_entry k ~qname:name ~op:`Get q.q_get;
  }

(* ---------------------------------------------------------------- *)
(* Host-side access for tests and servers (uncharged) *)

(* Items discarded by a [Drop] queue since creation. *)
let dropped k q =
  if q.q_dropped_cell = 0 then 0
  else Machine.peek k.Kernel.machine q.q_dropped_cell

let host_length k q =
  let m = k.Kernel.machine in
  let h = Machine.peek m (head_cell q) and t = Machine.peek m (tail_cell q) in
  if h >= t then h - t else h - t + q.q_size

let host_put k q v =
  let m = k.Kernel.machine in
  let h = Machine.peek m (head_cell q) in
  let nh = if h + 1 = q.q_size then 0 else h + 1 in
  if nh = Machine.peek m (tail_cell q) then false
  else begin
    Machine.poke m (q.q_buf + h) v;
    if q.q_flag <> 0 then Machine.poke m (q.q_flag + h) 1;
    Machine.poke m (head_cell q) nh;
    true
  end

let host_get k q =
  let m = k.Kernel.machine in
  let t = Machine.peek m (tail_cell q) in
  let valid =
    if q.q_flag <> 0 then Machine.peek m (q.q_flag + t) = 1
    else t <> Machine.peek m (head_cell q)
  in
  if not valid then None
  else begin
    let v = Machine.peek m (q.q_buf + t) in
    if q.q_flag <> 0 then Machine.poke m (q.q_flag + t) 0;
    Machine.poke m (tail_cell q) (if t + 1 = q.q_size then 0 else t + 1);
    Some v
  end
