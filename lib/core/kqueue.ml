(* Synthesized kernel queues (Figures 1 and 2).

   Most Synthesis kernel data structures are queues; once queue
   operations synchronize without locking, most of the kernel runs
   without locking (§3.2).  These templates generate the queue code
   with the descriptor addresses folded in.  The generated routines
   are kernel subroutines: item in r1, status returned in r0
   (1 = done, 0 = would block), clobbering r4..r7.

   The MP-SC put is the paper's measured path: 11 instructions on the
   68020 for the normal case, ~20 with one CAS retry.  The benchmark
   suite counts the executed instructions of our generated code and
   reports them next to the paper's numbers. *)

open Quamachine
module I = Insn

type kind = Spsc | Mpsc | Spmc | Mpmc

type t = {
  q_kind : kind;
  q_name : string;
  q_desc : int; (* [desc]=head, [desc+1]=tail *)
  q_buf : int;
  q_flag : int; (* flag array base (MP-SC); 0 for SP-SC *)
  q_size : int;
  q_put : int; (* code entries *)
  q_get : int;
  q_put_many : int; (* 0 when absent *)
}

let head_cell q = q.q_desc
let tail_cell q = q.q_desc + 1

(* ---------------------------------------------------------------- *)
(* Templates *)

(* Figure 1, Q_put: publish the item before advancing Q_head, so the
   consumer never sees a half-written slot. *)
let spsc_put_template =
  Template.make ~name:"spsc_put" ~params:[ "head"; "tail"; "buf"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4); (* h *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5); (* next(h) *)
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5); (* next(h) = tail -> full *)
        I.B (I.Eq, I.To_label "full");
        I.Alu (I.Add, I.Imm (p "buf"), I.r4);
        I.Move (I.Reg I.r1, I.Ind I.r4); (* fill slot *)
        I.Move (I.Reg I.r5, I.Abs (p "head")); (* publish last *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* Figure 1, Q_get. *)
let spsc_get_template =
  Template.make ~name:"spsc_get" ~params:[ "head"; "tail"; "buf"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "tail"), I.Reg I.r4); (* t *)
        I.Cmp (I.Abs (p "head"), I.Reg I.r4);
        I.B (I.Eq, I.To_label "empty");
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5);
        I.Move (I.Ind I.r5, I.Reg I.r1); (* take item *)
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm (p "size"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nowrap";
        I.Move (I.Reg I.r4, I.Abs (p "tail")); (* free slot last *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* MP-SC single-item put: claim a slot by CAS on Q_head, fill it, then
   set the slot's valid flag (Figure 2 with H = 1).  A failed CAS
   reloads r4 with the fresh head (68020 CAS semantics), so the retry
   loop re-enters after the initial load. *)
let mpsc_put_template =
  Template.make ~name:"mpsc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4); (* h *)
        I.Label "retry";
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5);
        I.B (I.Eq, I.To_label "full");
        I.Cas (I.r4, I.r5, I.Abs (p "head")); (* stake the claim *)
        I.B (I.Ne, I.To_label "retry");
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Reg I.r1, I.Ind I.r6); (* fill *)
        I.Alu (I.Add, I.Imm (p "flag"), I.r4);
        I.Move (I.Imm 1, I.Ind I.r4); (* mark valid *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* MP-SC get: the single consumer trusts only the flags. *)
let mpsc_get_template =
  Template.make ~name:"mpsc_get" ~params:[ "tail"; "buf"; "flag"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "tail"), I.Reg I.r4);
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Eq, I.To_label "empty");
        I.Move (I.Imm 0, I.Ind I.r5); (* consume the flag *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5);
        I.Move (I.Ind I.r5, I.Reg I.r1);
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm (p "size"), I.Reg I.r4);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nowrap";
        I.Move (I.Reg I.r4, I.Abs (p "tail"));
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* Figure 2 proper: atomic insert of r3 items read from (r2)+.  Either
   claims space for the whole burst or fails without side effects. *)
let mpsc_put_many_template =
  Template.make ~name:"mpsc_put_many"
    ~params:[ "head"; "tail"; "buf"; "flag"; "size" ] (fun p ->
      let size = p "size" in
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4);
        I.Label "retry";
        (* SpaceLeft(h): (tail - h - 1 + size) adjusted into range *)
        I.Move (I.Abs (p "tail"), I.Reg I.r5);
        I.Alu (I.Sub, I.Reg I.r4, I.r5);
        I.Alu (I.Add, I.Imm (size - 1), I.r5);
        I.Cmp (I.Imm size, I.Reg I.r5);
        I.B (I.Lt, I.To_label "nomod");
        I.Alu (I.Sub, I.Imm size, I.r5);
        I.Label "nomod";
        I.Cmp (I.Reg I.r3, I.Reg I.r5); (* space - H *)
        I.B (I.Cs, I.To_label "full"); (* space < H *)
        (* hi = AddWrap(h, H) *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Reg I.r3, I.r6);
        I.Cmp (I.Imm size, I.Reg I.r6);
        I.B (I.Lt, I.To_label "nowrap");
        I.Alu (I.Sub, I.Imm size, I.r6);
        I.Label "nowrap";
        I.Cas (I.r4, I.r6, I.Abs (p "head"));
        I.B (I.Ne, I.To_label "retry");
        (* fill the claimed slots, setting each valid flag *)
        I.Move (I.Reg I.r3, I.Reg I.r7);
        I.Alu (I.Sub, I.Imm 1, I.r7);
        I.Label "fill";
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Post_inc I.r2, I.Ind I.r6);
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "flag"), I.r6);
        I.Move (I.Imm 1, I.Ind I.r6);
        I.Alu (I.Add, I.Imm 1, I.r4);
        I.Cmp (I.Imm size, I.Reg I.r4);
        I.B (I.Ne, I.To_label "nf");
        I.Move (I.Imm 0, I.Reg I.r4);
        I.Label "nf";
        I.Dbra (I.r7, I.To_label "fill");
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* SP-MC get: consumers race on Q_tail with CAS.  A consumer first
   *claims* the slot (CAS tail forward), then reads it and clears its
   valid flag; the single producer reuses a slot only when its flag
   has been cleared, so no two consumers ever touch the same slot and
   no slot is overwritten while it is being read (§3.2). *)
let spmc_get_template =
  Template.make ~name:"spmc_get" ~params:[ "tail"; "buf"; "flag"; "size" ] (fun p ->
      [
        I.Move (I.Abs (p "tail"), I.Reg I.r4);
        I.Label "retry";
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Eq, I.To_label "empty"); (* not yet published *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cas (I.r4, I.r5, I.Abs (p "tail")); (* claim the slot *)
        I.B (I.Ne, I.To_label "retry");
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "buf"), I.r5);
        I.Move (I.Ind I.r5, I.Reg I.r1); (* read *)
        I.Alu (I.Add, I.Imm (p "flag"), I.r4);
        I.Move (I.Imm 0, I.Ind I.r4); (* release to the producer *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "empty";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* SP-MC put: the single producer writes only slots whose flag has
   been cleared by the consumer that drained them. *)
let spmc_put_template =
  Template.make ~name:"spmc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4);
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Ne, I.To_label "full"); (* slot still being read *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5);
        I.B (I.Eq, I.To_label "full");
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Reg I.r1, I.Ind I.r6); (* fill *)
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "flag"), I.r6);
        I.Move (I.Imm 1, I.Ind I.r6); (* publish *)
        I.Move (I.Reg I.r5, I.Abs (p "head"));
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* ---------------------------------------------------------------- *)
(* Creation *)

let alloc_common k ~name ~size ~with_flags =
  let alloc = k.Kernel.alloc in
  let desc = Kalloc.alloc_zeroed alloc 16 in
  let buf = Kalloc.alloc_zeroed alloc size in
  let flag = if with_flags then Kalloc.alloc_zeroed alloc size else 0 in
  ignore name;
  (desc, buf, flag)

let create_spsc_impl k ~name ~size =
  let desc, buf, _ = alloc_common k ~name ~size ~with_flags:false in
  let env =
    [ ("head", desc); ("tail", desc + 1); ("buf", buf); ("size", size) ]
  in
  let put, _ = Kernel.synthesize k ~name:(name ^ "/put") ~env spsc_put_template in
  let get, _ = Kernel.synthesize k ~name:(name ^ "/get") ~env spsc_get_template in
  {
    q_kind = Spsc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = 0;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
  }

let create_mpsc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = Kernel.synthesize k ~name:(name ^ "/put") ~env mpsc_put_template in
  let get, _ = Kernel.synthesize k ~name:(name ^ "/get") ~env mpsc_get_template in
  let put_many, _ =
    Kernel.synthesize k ~name:(name ^ "/put_many") ~env mpsc_put_many_template
  in
  {
    q_kind = Mpsc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = put_many;
  }

let create_spmc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = Kernel.synthesize k ~name:(name ^ "/put") ~env spmc_put_template in
  let get, _ = Kernel.synthesize k ~name:(name ^ "/get") ~env spmc_get_template in
  {
    q_kind = Spmc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
  }

(* MP-MC put: like Figure 2's claim-by-CAS, but with multiple
   consumers the head/tail distance alone cannot prove a slot free —
   a consumer may have advanced Q_tail while still reading its slot.
   The producer therefore also requires the slot's valid flag to be
   clear before staking its claim. *)
let mpmc_put_template =
  Template.make ~name:"mpmc_put" ~params:[ "head"; "tail"; "buf"; "flag"; "size" ]
    (fun p ->
      [
        I.Move (I.Abs (p "head"), I.Reg I.r4);
        I.Label "retry";
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm (p "flag"), I.r5);
        I.Tst (I.Ind I.r5);
        I.B (I.Ne, I.To_label "full"); (* slot not yet drained *)
        I.Move (I.Reg I.r4, I.Reg I.r5);
        I.Alu (I.Add, I.Imm 1, I.r5);
        I.Cmp (I.Imm (p "size"), I.Reg I.r5);
        I.B (I.Ne, I.To_label "nowrap");
        I.Move (I.Imm 0, I.Reg I.r5);
        I.Label "nowrap";
        I.Cmp (I.Abs (p "tail"), I.Reg I.r5);
        I.B (I.Eq, I.To_label "full");
        I.Cas (I.r4, I.r5, I.Abs (p "head")); (* stake the claim *)
        I.B (I.Ne, I.To_label "retry");
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Add, I.Imm (p "buf"), I.r6);
        I.Move (I.Reg I.r1, I.Ind I.r6);
        I.Alu (I.Add, I.Imm (p "flag"), I.r4);
        I.Move (I.Imm 1, I.Ind I.r4); (* publish *)
        I.Move (I.Imm 1, I.Reg I.r0);
        I.Rts;
        I.Label "full";
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rts;
      ])

(* MP-MC: flag-guarded CAS claims at both ends. *)
let create_mpmc_impl k ~name ~size =
  let desc, buf, flag = alloc_common k ~name ~size ~with_flags:true in
  let env =
    [
      ("head", desc); ("tail", desc + 1); ("buf", buf); ("flag", flag); ("size", size);
    ]
  in
  let put, _ = Kernel.synthesize k ~name:(name ^ "/put") ~env mpmc_put_template in
  let get, _ = Kernel.synthesize k ~name:(name ^ "/get") ~env spmc_get_template in
  {
    q_kind = Mpmc;
    q_name = name;
    q_desc = desc;
    q_buf = buf;
    q_flag = flag;
    q_size = size;
    q_put = put;
    q_get = get;
    q_put_many = 0;
  }

(* ---------------------------------------------------------------- *)
(* The unified entry point.

   [create ?kind] picks the synchronization discipline explicitly, or
   — when [kind] is omitted — derives it from the participant counts
   through the quaject interfacer's case table (§5.2): a queue always
   joins two active ends, so the connector chosen for the given
   multiplicities names the queue kind. *)

let kind_of_connector = function
  | Quaject.Queue_spsc -> Some Spsc
  | Quaject.Queue_mpsc -> Some Mpsc
  | Quaject.Queue_spmc -> Some Spmc
  | Quaject.Queue_mpmc -> Some Mpmc
  | Quaject.Procedure_call | Quaject.Monitored_call | Quaject.Pump_thread -> None

let kind_for ~producers ~consumers =
  let mult n = if n > 1 then Quaject.Multiple else Quaject.Single in
  let connector =
    Quaject.connect
      ~producer:{ Quaject.end_ = Quaject.Active; mult = mult producers }
      ~consumer:{ Quaject.end_ = Quaject.Active; mult = mult consumers }
  in
  match kind_of_connector connector with
  | Some kd -> kd
  | None -> assert false (* active/active always yields a queue *)

(* When tracing is enabled at synthesis time, wrap an entry so each
   call emits a Queue_put/Queue_get event carrying the r0 status.
   Without tracing the entry is returned untouched and no code is
   generated. *)
let traced_entry k ~qname ~op entry =
  let event ok =
    match op with
    | `Put -> Ktrace.Queue_put (qname, ok)
    | `Get -> Ktrace.Queue_get (qname, ok)
  in
  match Kernel.trace_probe_status k event with
  | [] -> entry
  | probe ->
    let suffix = match op with `Put -> "/traced_put" | `Get -> "/traced_get" in
    fst
      (Kernel.install_shared k ~name:(qname ^ suffix)
         ((I.Jsr (I.To_addr entry) :: probe) @ [ I.Rts ]))

let create ?kind ?(producers = 1) ?(consumers = 1) k ~name ~size =
  let kind =
    match kind with Some kd -> kd | None -> kind_for ~producers ~consumers
  in
  let q =
    match kind with
    | Spsc -> create_spsc_impl k ~name ~size
    | Mpsc -> create_mpsc_impl k ~name ~size
    | Spmc -> create_spmc_impl k ~name ~size
    | Mpmc -> create_mpmc_impl k ~name ~size
  in
  {
    q with
    q_put = traced_entry k ~qname:name ~op:`Put q.q_put;
    q_get = traced_entry k ~qname:name ~op:`Get q.q_get;
  }

(* ---------------------------------------------------------------- *)
(* Host-side access for tests and servers (uncharged) *)

let host_length k q =
  let m = k.Kernel.machine in
  let h = Machine.peek m (head_cell q) and t = Machine.peek m (tail_cell q) in
  if h >= t then h - t else h - t + q.q_size

let host_put k q v =
  let m = k.Kernel.machine in
  let h = Machine.peek m (head_cell q) in
  let nh = if h + 1 = q.q_size then 0 else h + 1 in
  if nh = Machine.peek m (tail_cell q) then false
  else begin
    Machine.poke m (q.q_buf + h) v;
    if q.q_flag <> 0 then Machine.poke m (q.q_flag + h) 1;
    Machine.poke m (head_cell q) nh;
    true
  end

let host_get k q =
  let m = k.Kernel.machine in
  let t = Machine.peek m (tail_cell q) in
  let valid =
    if q.q_flag <> 0 then Machine.peek m (q.q_flag + t) = 1
    else t <> Machine.peek m (head_cell q)
  in
  if not valid then None
  else begin
    let v = Machine.peek m (q.q_buf + t) in
    if q.q_flag <> 0 then Machine.poke m (q.q_flag + t) 0;
    Machine.poke m (tail_cell q) (if t + 1 = q.q_size then 0 else t + 1);
    Some v
  end
