(* Code templates and Factoring Invariants (§2.2).

   A template is a named code generator written against an environment
   of *invariants* — run-time constants such as a queue's buffer
   address, a file's size, a thread's TTE address.  Instantiation
   ("factorization") folds those constants into the emitted
   instructions as immediates and absolute addresses; the peephole
   stage then cleans up whatever the folding made redundant.

   The generator function receives a total lookup for the declared
   parameters; asking for an undeclared or missing parameter is a
   kernel bug and raises. *)

open Quamachine

exception Missing_param of string * string (* template, param *)

type t = {
  name : string;
  params : string list; (* declared invariants *)
  gen : (string -> int) -> Insn.insn list;
}

let make ~name ~params gen = { name; params; gen }

(* Factorization stage: bind the invariants and emit code. *)
let instantiate t ~env =
  List.iter
    (fun p ->
      if not (List.mem_assoc p env) then raise (Missing_param (t.name, p)))
    t.params;
  let lookup p =
    match List.assoc_opt p env with
    | Some v -> v
    | None -> raise (Missing_param (t.name, p))
  in
  t.gen lookup

let name t = t.name
let params t = t.params

(* The template's identity for synthesis-cache keys: templates are
   top-level values minted once, so the name doubles as a stable id. *)
let id t = t.name
