(** Counter/gauge registry and the scheduler's typed epoch history.

    Host-side bookkeeping only: touching a metric never charges
    simulated cycles.  The ktrace layer and the fine-grain scheduler
    share one registry so a single dump shows event counts next to
    rebalance history. *)

type t

type counter
type gauge

(** One thread's row in a scheduler rebalance: the I/O rate observed
    over the epoch and the quantum assigned from it (§4: quantum ∝
    1/rate). *)
type epoch_entry = { ep_tid : int; ep_rate : int; ep_quantum : int }

(** One scheduler rebalance, stamped with simulated time. *)
type epoch_record = { ep_time_us : float; ep_entries : epoch_entry list }

val create : unit -> t

(** {1 Well-known names}

    The ksynth synthesis cache's counters and the peak code-footprint
    gauge (bytes, 4 per code word), spelled once so the cache, the
    profiler and the dumps agree. *)

val synth_cache_hits : string
val synth_cache_misses : string
val synth_cache_evictions : string
val synth_cache_resynth : string
val code_bytes_peak : string

(** {1 Counters} *)

(** Find-or-create by name. *)
val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** Find-or-create and increment in one call. *)
val bump : ?by:int -> t -> string -> unit

(** Value of a named counter, 0 when absent. *)
val read : t -> string -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string
val read_gauge : t -> string -> float option

(** {1 Histograms}

    Latency histograms live in the same registry as counters and
    gauges so one dump (and one profile JSON) shows counts next to
    tails.  See {!Histogram}. *)

(** Find-or-create by name. *)
val histogram : t -> string -> Histogram.t

(** Find-or-create and record one observation. *)
val observe : t -> string -> int -> unit

(** All histograms, sorted by name. *)
val histograms : t -> (string * Histogram.t) list

(** {1 Scheduler epochs} *)

val record_epoch : t -> epoch_record -> unit

(** Newest first. *)
val epoch_history : t -> epoch_record list

val epoch_count : t -> int

(** {1 Dumping} *)

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list
val pp : Format.formatter -> t -> unit
