(** The disk-backed file system (§5.1 pipeline), writable since kcrash
    with power-cut crash consistency.

    Files are contiguous block runs.  Block 0 is the directory, blocks
    1–2 the intent log (header + shadow directory image), data starts
    at block 3.  Reads go through synthesized per-open routines that
    block on cache misses; writes are host-side metadata operations
    ([create]/[append]/[replace]/[rename]) that step the machine like
    {!Disk_server.read_block_sync}.

    Two crash-consistency mechanisms can be disabled independently so
    the crash-point explorer can show what each buys:
    - [m_barriers]: flush + disk-server barrier ordering data ahead of
      the metadata that names it (and a drain at the end of each
      operation).  Off: data sits dirty in the cache until [sync]
      while metadata goes straight to the elevator.
    - [m_journal]: directory updates go through the intent log —
      shadow image, header state=1, directory write, header state=0,
      fenced pairwise; boot-time [recover] replays the shadow.  Off:
      the directory block is written in place (tearable), and
      [replace] overwrites file content in place. *)

type dfs_file = {
  df_name : string;
  df_slot : int;  (** directory slot *)
  mutable df_start : int;  (** first block of the run *)
  mutable df_cap : int;  (** run capacity in blocks *)
  mutable df_words : int;  (** current length in words *)
}

type mechanisms = { m_barriers : bool; m_journal : bool }

val all_mechanisms : mechanisms

type t

val magic : int
val log_magic : int
val dir_block : int
val log_header_block : int
val log_shadow_block : int
val data_start : int
val max_name : int

(** Host-side mkfs: directory + cleared intent log + file bodies
    written straight to the device.  [capacities] reserves a larger
    run (in blocks) for named files so they can grow by [append]. *)
val format :
  Kernel.t ->
  ?capacities:(string * int) list ->
  files:(string * int array) list ->
  unit ->
  unit

(** Boot-time intent-log replay, run before the directory is believed.
    Returns [true] when a recorded intent was replayed. *)
val recover : ?budget:int -> Vfs.t -> Disk_server.t -> bool

(** Recover, read the directory and register every file as
    ["/disk/<name>"].  Needs a live machine context (reads complete
    through the disk interrupt): start at least the idle thread
    first.  Also registers a {!Vfs.on_sync} hook flushing the cache
    behind a barrier. *)
val mount :
  ?mechanisms:mechanisms -> ?budget:int -> Vfs.t -> Disk_server.t -> t

(** Defer [mount] to the top of the next {!Boot.go} (via
    {!Boot.at_boot}), so recovery happens as part of boot; the
    returned thunk yields the mount once boot has run. *)
val mount_at_boot :
  ?mechanisms:mechanisms ->
  ?budget:int ->
  Boot.t ->
  Vfs.t ->
  Disk_server.t ->
  unit ->
  t option

(** Create an empty file with a reserved run; commits the directory. *)
val create : t -> string -> capacity_blocks:int -> dfs_file

(** Append words; data is ordered ahead of the length update when
    barriers are on. *)
val append : t -> string -> int array -> unit

(** Atomic whole-file replacement: journaled mode writes a fresh run
    and flips the dirent; unjournaled mode overwrites in place. *)
val replace : t -> string -> int array -> unit

(** Rename, replacing any existing target in one directory image. *)
val rename : t -> from_:string -> to_:string -> unit

(** Write back everything dirty and wait for the pipeline to drain. *)
val sync : t -> unit

val fsync : t -> string -> bool

(** Whole-file read through the cache (host-side; litmus predicates). *)
val read_file : t -> string -> int array option

val find : t -> string -> dfs_file option
val files : t -> dfs_file list
val mechanisms : t -> mechanisms
