(** Synthesis threads (§4): creation fills the ~1 KiB TTE and
    synthesizes the thread's private kernel code (switch procedures,
    fd dispatchers); signal/start/stop/step/destroy manipulate only
    the TTE and the executable ready queue. *)

(** Create a thread whose saved context enters [entry] in user mode.
    [segments] extends its quaspace; [share_map] joins another
    thread's quaspace instead (enabling the non-MMU switch path
    between them); [system] threads don't keep the machine alive.
    ~142 µs of simulated time (Table 3). *)
val create :
  Kernel.t ->
  ?cpu:int ->
  ?quantum_us:int ->
  ?uses_fp:bool ->
  ?segments:(int * int) list ->
  ?ustack_words:int ->
  ?system:bool ->
  ?share_map:Kernel.tte ->
  entry:int ->
  unit ->
  Kernel.tte

val destroy : Kernel.t -> Kernel.tte -> unit

(** Suspend: unlink the TTE from the ready queue. *)
val stop : Kernel.t -> Kernel.tte -> unit

(** Resume at the front of the ready queue, preempting the CPU. *)
val start : Kernel.t -> Kernel.tte -> unit

(** Run one instruction of a stopped thread, then stop again (§4.3's
    debugger support).  Poll {!fully_stopped} before reading state. *)
val step : Kernel.t -> Kernel.tte -> unit

(** A stopped thread's context is in its TTE only once its switch-out
    has run; wait for this before reading registers or re-stepping. *)
val fully_stopped : Kernel.t -> Kernel.tte -> bool

(** Restart a crashed thread: rebuild the initial register image from
    the creation parameters kept in the TTE, clear pending signal
    state, reinsert at the front of the ready queue, and bump the
    "kernel.thread_restarts_total" metric.  The synthesized switch
    code and fd tables survive.  Raises on a destroyed (zombie)
    thread.  Also reachable as [Kernel.restart_thread]. *)
val restart : Kernel.t -> Kernel.tte -> unit

(** {1 Saved context access (host-side debugger)} *)

val saved_sr : Kernel.t -> Kernel.tte -> int
val saved_pc : Kernel.t -> Kernel.tte -> int
val saved_reg : Kernel.t -> Kernel.tte -> Quamachine.Insn.reg -> int
val set_saved_reg : Kernel.t -> Kernel.tte -> Quamachine.Insn.reg -> int -> unit

(** {1 Signals (§4.3)} *)

(** Rewrite a return address to run the thread's signal trampoline:
    the TTE's saved PC for a thread suspended in user mode, the
    deepest kernel-stack frame for one inside a kernel operation
    (Procedure Chaining).  A thread running on {e another} core right
    now is queued on [k.sig_xc] and its home core is interrupted at
    {!sig_ipi_level}; the IPI handler re-delivers there.  [false] if
    no handler is registered. *)
val deliver_signal : Kernel.t -> Kernel.tte -> bool

(** Interrupt level / autovector of the cross-core signal IPI. *)
val sig_ipi_level : int

val sig_ipi_vector : int

(** Re-deliver queued cross-core signals targeting the executing core
    (the body of the IPI handler Boot installs). *)
val drain_cross_signals : Kernel.t -> unit

(** Synthesize the user-mode trampoline with [handler] folded in. *)
val set_signal_handler : Kernel.t -> Kernel.tte -> int -> unit

(** {1 Error traps (§4.3)} *)

(** Install a user-mode error procedure: the synthesized trap handler
    copies the exception frame (faulting PC, then SR) onto the user
    stack and re-enters user mode at [user_proc] — arbitrarily complex
    error handling in user mode, including emulation of unimplemented
    instructions.  Returns the handler's entry point. *)
val set_error_handler : Kernel.t -> Kernel.tte -> user_proc:int -> int

(** {1 Blocking protocol} *)

(** Memoized host-call ids for a wait queue. *)
val block_hcall : Kernel.t -> Kernel.waitq -> int

val unblock_hcall : Kernel.t -> Kernel.waitq -> int

(** Pop one waiter and put it at the front of the ready queue,
    arming a short preemption (§4.4: minimize response time). *)
val unblock : Kernel.t -> Kernel.waitq -> Kernel.tte option

(** Wake every waiter; each re-checks its condition on resume. *)
val unblock_all : Kernel.t -> Kernel.waitq -> unit

(** Fragment a synthesized kernel path embeds to block the current
    thread on [wq] and resume at label [retry] in supervisor mode.
    Callers are responsible for the lost-wakeup guard (see
    [Tty.guarded_block]). *)
val block_code : Kernel.t -> Kernel.waitq -> retry:string -> Quamachine.Insn.insn list

(** The per-thread fd dispatcher template (exposed for inspection). *)
val dispatcher_template : Template.t

val deepest_frame_pc_slot : Kernel.tte -> int
