(** Cycle-attributed kernel tracing.

    A bounded ring buffer of typed events stamped with the machine
    cycle counter, fed from three directions:

    {ul
    {- host-side machine hooks (interrupt post/accept, device ticks,
       faults) — free, no simulated cycles;}
    {- host-side kernel call sites (synthesis, patches, block/unblock,
       rebalances) — also free;}
    {- probes spliced into synthesized code (context switches, queue
       put/get) — one [Hcall] each, and {e only} when tracing is
       enabled at synthesis time.  With tracing off the probe
       fragments are empty, so the traced and untraced kernels run
       identical instruction streams: tracing-off overhead is exactly
       zero cycles ([bench/trace_overhead.ml] proves it).}}

    Cycle attribution rides on {!Machine.set_owner_range}: every
    synthesized routine registers as an owner, and the per-owner
    totals sum exactly to the machine's cycle total over the traced
    window.  See [docs/OBSERVABILITY.md]. *)

open Quamachine

type t

type kind =
  | Switch_out of int  (** tid leaving the CPU *)
  | Switch_in of int  (** tid entering the CPU *)
  | Queue_put of string * bool  (** queue name, success (false = full) *)
  | Queue_get of string * bool  (** queue name, success (false = empty) *)
  | Block of string * int  (** wait-queue name, tid *)
  | Unblock of string * int
  | Synthesized of string * int  (** routine name, instruction count *)
  | Patched of int  (** code address rewritten in place *)
  | Rebalance of int  (** scheduler epoch number *)
  | Irq_posted of string * int  (** posting device, level *)
  | Irq_enter of int * int  (** level, vector *)
  | Device_tick of string
  | Fault of string
  | Span_open of int * string  (** span id, pipeline name (see {!Kspan}) *)
  | Span_hop of int * string  (** span id, "stage/phase" *)
  | Span_close of int * string  (** span id, pipeline name *)
  | Retune of int * int  (** scheduler quantum retune: tid, new quantum (µs) *)

type event = { ev_cycles : int; ev_kind : kind }

(** [blackbox] sizes the always-on flight-recorder ring (see
    {!blackbox_events}). *)
val create : ?capacity:int -> ?blackbox:int -> ?enabled:bool -> Machine.t -> t
val machine : t -> Machine.t
val metrics : t -> Metrics.t
val enabled : t -> bool

(** Runtime switch: stops event {e collection}.  Probes already
    compiled into synthesized code still cost their [Hcall]; only
    synthesis-time disabling removes them entirely. *)
val set_enabled : t -> bool -> unit

val emit : t -> kind -> unit
val kind_name : kind -> string

(** Buffered events, oldest first. *)
val events : t -> event list

(** Total emitted, including events the ring has dropped. *)
val event_count : t -> int

val dropped : t -> int
val clear : t -> unit

(** {1 Flight recorder}

    A second, small ring that records every event reaching {!emit}
    even while collection is disabled — the crash black box dumped by
    [Kernel.postmortem].  Host-side state only: keeping it on does not
    change simulated cycle counts, so disabled runs stay
    cycle-identical. *)

(** Black-box contents, oldest first. *)
val blackbox_events : t -> event list

(** {1 Owners and cycle attribution} *)

(** Register a synthesized routine as a cycle owner; returns its id. *)
val register_owner : t -> name:string -> entry:int -> len:int -> int

val owner_name : t -> int -> string

(** Per-owner cycle totals (registered routines plus the reserved
    host/idle/irq/unowned owners), biggest first.  Flushes pending
    host charges first so the totals are balanced. *)
val owner_cycles : t -> (string * int) list

(** Sum over all owners — equals {!traced_cycles} whenever attribution
    was enabled for the whole window. *)
val attributed_total : t -> int

(** Machine cycles elapsed since {!install}. *)
val traced_cycles : t -> int

(** Owner totals grouped by quaject (first ['/']-separated component
    of the routine name). *)
val quaject_cycles : t -> (string * int) list

(** Per-thread CPU cycles reconstructed from the switch events. *)
val thread_cycles : t -> (int * int) list

(** {1 Installation} *)

(** Wire the machine hooks so interrupt/device/fault activity lands in
    the ring. *)
val install_machine_hooks : t -> unit

(** Hooks + cycle attribution, window starting now.  Use
    [Kernel.attach_tracing] instead when a kernel is up: it also
    registers already-synthesized routines as owners. *)
val install : t -> unit

(** {1 Probes for synthesized code} *)

(** Instruction fragment emitting [kind]; [[]] when tracing is
    disabled, a single [Hcall] when enabled. *)
val probe : t -> kind -> Insn.insn list

(** Like {!probe}, but the payload is computed at execution time from
    r0 (the generated-code status convention: 1 done, 0 would-block). *)
val probe_status : t -> (bool -> kind) -> Insn.insn list

(** {1 Export} *)

val pp_summary : Format.formatter -> t -> unit

(** One event as "cycles  kind detail" (postmortem dumps). *)
val pp_event : Format.formatter -> event -> unit

(** The whole ring as Chrome [chrome://tracing] JSON ([traceEvents]
    plus an [otherData] block with the per-quaject cycle totals). *)
val to_chrome_json : t -> string

(** Just the flight-recorder black box as Chrome JSON. *)
val blackbox_to_chrome_json : t -> string
