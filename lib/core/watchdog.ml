(* Flow-rate watchdog quaject.

   The fine-grain scheduler's insight (§4) is that progress is a
   *rate*: a healthy pump moves items every quantum.  The watchdog
   inverts that — a flow whose observed counter stops moving for
   [threshold] consecutive periods is stalled, and the registered
   restart action kicks it back to life (re-arm a lost timer, re-issue
   a transfer, restart a pump thread).

   It runs as a periodic host-side machine device, so while it is
   armed the machine always has a next event: a watched run never
   raises [Deadlock], it recovers instead.  Stop it when the workload
   ends.  Fault-free runs that never install a watchdog are untouched;
   runs that do pay zero simulated cycles for the watching itself —
   only restart actions charge (whatever they do). *)

open Quamachine

type flow = {
  w_name : string;
  w_read : unit -> int; (* monotone progress counter *)
  w_restart : unit -> unit;
  w_threshold : int; (* consecutive zero-delta periods before restart *)
  w_escalate : int; (* restarts without progress before escalating *)
  mutable w_last : int;
  mutable w_zeros : int;
  mutable w_restarts : int;
  mutable w_stuck : int; (* consecutive restarts with no progress between *)
}

type t = {
  wd_kernel : Kernel.t;
  wd_period_cycles : int;
  wd_dev : Machine.device;
  mutable wd_flows : flow list;
  mutable wd_running : bool;
  (* kheal: when enabled, each period also checksum-walks the
     synthesized-code region table and resynthesizes corrupted
     regions (Kernel.audit_code).  The walk itself is host-side and
     free; repairs charge synthesis cost. *)
  mutable wd_audit : bool;
  mutable wd_audit_repairs : int;
}

let check t flow =
  let v = flow.w_read () in
  if v <> flow.w_last then begin
    flow.w_last <- v;
    flow.w_zeros <- 0;
    flow.w_stuck <- 0
  end
  else begin
    flow.w_zeros <- flow.w_zeros + 1;
    if flow.w_zeros >= flow.w_threshold then begin
      flow.w_zeros <- 0;
      flow.w_restarts <- flow.w_restarts + 1;
      flow.w_stuck <- flow.w_stuck + 1;
      let k = t.wd_kernel in
      Metrics.bump k.Kernel.metrics "watchdog.restarts";
      Kernel.trace k (Ktrace.Fault ("watchdog/" ^ flow.w_name));
      (* escalation: restarting is not helping — the flow has been
         restarted [w_escalate] times in a row without a single unit
         of progress in between.  Dump the flight recorder once per
         stuck streak so the wreckage is captured while fresh. *)
      if flow.w_stuck = flow.w_escalate then begin
        Kernel.log_fault k ~tid:0
          ~reason:("watchdog_escalation/" ^ flow.w_name);
        ignore
          (Kernel.postmortem
             ~reason:
               (Fmt.str "watchdog escalation: %s stalled through %d restarts"
                  flow.w_name flow.w_stuck)
             k)
      end;
      flow.w_restart ()
    end
  end

let tick t m =
  if t.wd_running then begin
    List.iter (check t) t.wd_flows;
    if t.wd_audit then
      t.wd_audit_repairs <-
        t.wd_audit_repairs + Kernel.audit_code ~origin:"watchdog" t.wd_kernel;
    Machine.device_schedule m t.wd_dev (Machine.cycles m + t.wd_period_cycles)
  end
  else Machine.device_idle m t.wd_dev

let install k ?(period_us = 2_000.0) () =
  let m = k.Kernel.machine in
  let period_cycles = Cost.cycles_of_us (Machine.cost_model m) period_us in
  let rec t =
    lazy
      {
        wd_kernel = k;
        wd_period_cycles = period_cycles;
        wd_dev =
          Machine.add_device m ~name:"watchdog"
            ~due:(Machine.cycles m + period_cycles)
            ~tick:(fun m -> tick (Lazy.force t) m);
        wd_flows = [];
        wd_running = true;
        wd_audit = false;
        wd_audit_repairs = 0;
      }
  in
  Lazy.force t

(* Enable the per-period code audit (kheal's second detection
   channel: corruption in regions that never execute still gets
   caught and repaired within one watchdog period). *)
let audit_code t = t.wd_audit <- true
let audit_repairs t = t.wd_audit_repairs

let watch t ~name ?(threshold = 3) ?(escalate = 3) ~read ~restart () =
  let flow =
    {
      w_name = name;
      w_read = read;
      w_restart = restart;
      w_threshold = max 1 threshold;
      w_escalate = max 1 escalate;
      w_last = read ();
      w_zeros = 0;
      w_restarts = 0;
      w_stuck = 0;
    }
  in
  t.wd_flows <- flow :: t.wd_flows;
  flow

let stop t =
  t.wd_running <- false;
  Machine.device_idle t.wd_kernel.Kernel.machine t.wd_dev

let restarts flow = flow.w_restarts
let flow_name flow = flow.w_name
let total_restarts t =
  List.fold_left (fun acc f -> acc + f.w_restarts) 0 t.wd_flows
