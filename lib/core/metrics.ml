(* A small counter/gauge registry plus the scheduler's typed epoch
   history.  Everything here is host-side bookkeeping: reading or
   updating a metric never charges simulated cycles. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type epoch_entry = { ep_tid : int; ep_rate : int; ep_quantum : int }
type epoch_record = { ep_time_us : float; ep_entries : epoch_entry list }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
  mutable epochs : epoch_record list; (* newest first *)
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    epochs = [];
  }

(* ------------------------------------------------------------------ *)
(* Well-known names: the ksynth cache's counters and the peak code
   footprint gauge, spelled once so the cache, the profiler and the
   dumps agree. *)

let synth_cache_hits = "kernel.synth_cache_hits_total"
let synth_cache_misses = "kernel.synth_cache_misses_total"
let synth_cache_evictions = "kernel.synth_cache_evictions_total"
let synth_cache_resynth = "kernel.synth_cache_resynth_total"
let code_bytes_peak = "kernel.code_bytes_peak"

(* ------------------------------------------------------------------ *)
(* Counters *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let counter_name c = c.c_name

(* Bump a counter by name: convenience for call sites that fire
   rarely enough that the hash lookup doesn't matter. *)
let bump ?by t name = incr ?by (counter t name)

let read t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Gauges *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace t.gauges name g;
    g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value
let gauge_name g = g.g_name

let read_gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> Some g.g_value
  | None -> None

(* ------------------------------------------------------------------ *)
(* Histograms *)

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace t.hists name h;
    h

let observe t name v = Histogram.record (histogram t name) v

let histograms t =
  Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Scheduler epochs *)

let record_epoch t r = t.epochs <- r :: t.epochs
let epoch_history t = t.epochs
let epoch_count t = List.length t.epochs

(* ------------------------------------------------------------------ *)
(* Dumping *)

let counters t =
  Hashtbl.fold (fun _ c acc -> (c.c_name, c.c_value) :: acc) t.counters []
  |> List.sort compare

let gauges t =
  Hashtbl.fold (fun _ g acc -> (g.g_name, g.g_value) :: acc) t.gauges []
  |> List.sort compare

let pp ppf t =
  List.iter (fun (n, v) -> Fmt.pf ppf "%-40s %d@." n v) (counters t);
  List.iter (fun (n, v) -> Fmt.pf ppf "%-40s %g@." n v) (gauges t);
  List.iter (fun (n, h) -> Fmt.pf ppf "%-40s %a@." n Histogram.pp h)
    (histograms t);
  if t.epochs <> [] then
    Fmt.pf ppf "%-40s %d@." "scheduler.epochs.recorded" (List.length t.epochs)
