(** Code templates and Factoring Invariants (§2.2).

    A template is a named generator written against an environment of
    run-time constants; instantiation folds the constants into the
    emitted instructions as immediates and absolute addresses. *)

exception Missing_param of string * string

type t

(** [make ~name ~params gen]: [gen lookup] must only apply [lookup]
    to the declared [params]. *)
val make :
  name:string -> params:string list -> ((string -> int) -> Quamachine.Insn.insn list) -> t

(** The factorization stage: bind invariants, emit code.  Raises
    {!Missing_param} if [env] lacks a declared parameter. *)
val instantiate : t -> env:(string * int) list -> Quamachine.Insn.insn list

val name : t -> string
val params : t -> string list

(** Stable identity used in synthesis-cache keys (the name: templates
    are top-level values minted once per generator). *)
val id : t -> string
