(** The Synthesis model of computation (§2.1): threads as nodes of a
    directed graph, data-flow channels as arcs.  Linear pipelines are
    composed declaratively; the quaject interfacer's case analysis
    picks the connector for each arc (SP-SC pipes between
    single active stages). *)

type role =
  | Head of (wfd:int -> Quamachine.Insn.insn list)  (** pure producer *)
  | Middle of (rfd:int -> wfd:int -> Quamachine.Insn.insn list)  (** filter *)
  | Tail of (rfd:int -> Quamachine.Insn.insn list)  (** pure consumer *)

type stage

val stage : ?segments:(int * int) list -> ?quantum_us:int -> role -> stage

type built = {
  sg_threads : Kernel.tte list;  (** in pipeline order *)
  sg_pipes : Kpipe.t list;  (** the arcs, in order *)
  sg_connectors : Quaject.connector list;  (** the interfacer's choices *)
}

(** The connector for an arc with the given endpoint multiplicities. *)
val connect_many : producers:int -> consumers:int -> Quaject.connector

(** Build Head → Middle* → Tail: creates the threads (runnable) and
    the connecting pipes, with each pipe end synthesized for its
    owning thread.  Raises [Invalid_argument] on malformed shapes. *)
val pipeline : Vfs.t -> ?pipe_cap:int -> stage list -> built

(** {1 Queues, pumps, switches, and flow-rate gauges (kserve)}

    The §4 stream layer: arcs become gauged kernel queues, active
    stages become pump/switch machine-code programs, and every arc
    carries a flow-rate gauge the scheduler and overload controller
    read (§3). *)

(** End-of-stream sentinel.  A pump forwards it downstream and exits;
    a switch forwards it to every output exactly once and exits. *)
val eof_word : int

(** {2 Gauges} *)

type gauge = {
  g_cell : int;  (** machine-word event counter, ticked by stage code *)
  g_name : string;
  mutable g_last_count : int;
  mutable g_last_cycles : int;
  mutable g_rate : float;  (** events per kilocycle, last window *)
}

val gauge : Kernel.t -> name:string -> gauge

(** The one-instruction counter tick stages splice into their loops. *)
val gauge_tick : gauge -> Quamachine.Insn.insn list

val gauge_count : Kernel.t -> gauge -> int

(** Windowed rate in events per kilocycle since the last sample.  The
    counter delta is taken modulo 2^32 (wrap-correct); a zero-width
    window returns the previous rate instead of dividing by zero. *)
val gauge_sample : Kernel.t -> gauge -> float

(** Last sampled rate, without advancing the window. *)
val gauge_rate : gauge -> float

(** {2 Flows: gauged queue arcs} *)

type flow = { fl_q : Kqueue.t; fl_gauge : gauge }

(** The queue kind is picked from the endpoint multiplicities through
    the §5.2 connector table (fan-in: [producers > 1]; fan-out:
    [consumers > 1]). *)
val flow :
  ?producers:int ->
  ?consumers:int ->
  ?overflow:Kqueue.overflow ->
  Kernel.t ->
  name:string ->
  size:int ->
  flow

val flow_length : Kernel.t -> flow -> int
val flow_put : Kernel.t -> flow -> int -> bool
val flow_get : Kernel.t -> flow -> int option

(** {2 Stage programs}

    Queue calling convention: item in r1, status in r0; r4..r7
    clobbered.  Empty gets and full puts spin through a yield trap, so
    a stalled consumer backpressures its producer chain one arc at a
    time. *)

(** Spin-with-yield call wrappers around a synthesized queue entry:
    Jsr [get]/[put], retry through a yield trap while r0 = 0.  [label]
    must be unique within the enclosing program. *)
val retry_get : label:string -> get:int -> Quamachine.Insn.insn list

val retry_put : label:string -> put:int -> Quamachine.Insn.insn list

(** Copy [from_] into [into], ticking [into]'s gauge (plus [gauges],
    e.g. the thread's TTE scheduling gauge) per item. *)
val pump_program :
  ?gauges:gauge list -> from_:flow -> into:flow -> unit ->
  Quamachine.Insn.insn list

(** Demultiplex by a key field: output index = (item >> [shift]) &
    (n-1).  The output count must be a power of two. *)
val switch_program :
  ?gauges:gauge list -> from_:flow -> outs:flow array -> shift:int -> unit ->
  Quamachine.Insn.insn list

(** Assemble [program] and start a thread on it.  Segments must cover
    everything the stage touches; see {!flow_segments}. *)
val spawn :
  Kernel.t ->
  ?cpu:int ->
  ?quantum_us:int ->
  ?segments:(int * int) list ->
  Quamachine.Insn.insn list ->
  Kernel.tte

(** The data segments a flow's stage code touches (descriptor,
    buffer, flags, drop cell, gauge). *)
val flow_segments : flow -> (int * int) list
