(* Pipes (§6.2, Table 1 programs 2–4).

   A pipe is a power-of-two ring of words plus synthesized read/write
   routines for each attached thread.  The producer and consumer
   operate on different parts of the buffer (SP-SC optimistic
   discipline): the writer publishes `head` only after the copy, the
   reader publishes `tail` only after the copy, so neither end ever
   observes half-moved data.  Data moves in unrolled 8-word bursts —
   the generated code achieves the paper's "8 MB/s" shape.

   Blocking uses the standard protocol: flag the waiting side, move
   the TTE to the pipe's wait queue, and retry from the top on
   wake-up. *)

open Quamachine
module I = Insn
module L = Layout.Tte

type t = {
  p_name : string;
  p_desc : int; (* [0]=head [1]=tail [2]=rwait [3]=wwait [4]=weof *)
  p_buf : int;
  p_cap : int; (* power of two *)
  p_readers : Kernel.waitq;
  p_writers : Kernel.waitq;
  mutable p_ends : int; (* open descriptors; 0 after the last close *)
}

let head_cell p = p.p_desc
let tail_cell p = p.p_desc + 1
let rwait_cell p = p.p_desc + 2
let wwait_cell p = p.p_desc + 3
let weof_cell p = p.p_desc + 4

(* The same unrolled copy as the file system, src r5 -> dst r2, count
   r6, scratch r4. *)
let burst_copy ~prefix =
  let lbl s = prefix ^ s in
  [
    I.Move (I.Reg I.r6, I.Reg I.r4);
    I.Alu (I.Lsr, I.Imm 3, I.r4);
    I.B (I.Eq, I.To_label (lbl "tail"));
    I.Alu (I.Sub, I.Imm 1, I.r4);
    I.Label (lbl "blk");
  ]
  @ List.init 8 (fun _ -> I.Move (I.Post_inc I.r5, I.Post_inc I.r2))
  @ [
      I.Dbra (I.r4, I.To_label (lbl "blk"));
      I.Label (lbl "tail");
      I.Move (I.Reg I.r6, I.Reg I.r4);
      I.Alu (I.And, I.Imm 7, I.r4);
      I.B (I.Eq, I.To_label (lbl "done"));
      I.Alu (I.Sub, I.Imm 1, I.r4);
      I.Label (lbl "t1");
      I.Move (I.Post_inc I.r5, I.Post_inc I.r2);
      I.Dbra (I.r4, I.To_label (lbl "t1"));
      I.Label (lbl "done");
    ]

(* write(fd, buf, n): r2 = source, r3 = count; writes everything,
   blocking while the pipe is full; returns n in r0. *)
let write_template k pipe ~gauge =
  let mask = pipe.p_cap - 1 in
  (* Ktrace probe, synthesized in only when tracing is enabled: fires
     after the writer publishes head, i.e. once per successful burst.
     All probe fragments live outside Template.make so kheal repair
     regenerates byte-identical code. *)
  let probe = Kernel.trace_probe k (Ktrace.Queue_put (pipe.p_name, true)) in
  (* kspan: a request is one published burst.  Entry stamps where
     writer service starts; the publish probe opens the span back at
     that stamp, books the service hop, and parks it in the side-table
     weighted by the burst's word count (r6 at the publish point). *)
  let span_enter =
    Kernel.span_probe k (fun sp _ -> Kspan.stage_enter sp ~queue:pipe.p_desc)
  in
  let span_publish =
    Kernel.span_probe k (fun sp m ->
        Kspan.enqueue sp ~queue:pipe.p_desc ~pipeline:"pipe" ~detail:pipe.p_name
          ~stage:"write" ~weight:(Machine.get_reg m I.r6))
  in
  Template.make ~name:"pipe_write" ~params:[] (fun _ ->
      span_enter
      @ [
        I.Move (I.Reg I.r3, I.Reg I.r8); (* remaining *)
        I.Move (I.Reg I.r3, I.Reg I.r0); (* return value *)
        I.Tst (I.Reg I.r8);
        I.B (I.Eq, I.To_label "out");
        I.Label "retry";
        I.Move (I.Abs (head_cell pipe), I.Reg I.r4);
        I.Move (I.Abs (tail_cell pipe), I.Reg I.r5);
        I.Alu (I.Sub, I.Reg I.r4, I.r5);
        I.Alu (I.Sub, I.Imm 1, I.r5);
        I.Alu (I.And, I.Imm mask, I.r5); (* r5 = space *)
        I.B (I.Ne, I.To_label "space_ok");
        (* Full: flag ourselves waiting and block.  The flag-set and
           the block must be atomic against the reader, or a drain
           between them loses the wake-up — mask preemption and
           re-check before committing to sleep. *)
        I.Set_ipl 6;
        I.Move (I.Imm 1, I.Abs (wwait_cell pipe));
        I.Move (I.Abs (head_cell pipe), I.Reg I.r4);
        I.Move (I.Abs (tail_cell pipe), I.Reg I.r5);
        I.Alu (I.Sub, I.Reg I.r4, I.r5);
        I.Alu (I.Sub, I.Imm 1, I.r5);
        I.Alu (I.And, I.Imm mask, I.r5);
        I.B (I.Ne, I.To_label "race_retry");
      ]
      @ Thread.block_code k pipe.p_writers ~retry:"retry"
      @ [
          I.Label "race_retry";
          I.Move (I.Imm 0, I.Abs (wwait_cell pipe));
          I.Set_ipl 0;
          I.B (I.Always, I.To_label "retry");
          I.Label "space_ok";
          (* m = min(remaining, space, contiguous run to wrap) *)
          I.Cmp (I.Reg I.r8, I.Reg I.r5);
          I.B (I.Cs, I.To_label "use_space"); (* space < remaining *)
          I.Move (I.Reg I.r8, I.Reg I.r5);
          I.Label "use_space";
          I.Move (I.Imm pipe.p_cap, I.Reg I.r6);
          I.Alu (I.Sub, I.Reg I.r4, I.r6); (* run = cap - head *)
          I.Cmp (I.Reg I.r5, I.Reg I.r6);
          I.B (I.Cc, I.To_label "use_m"); (* run >= m *)
          I.Move (I.Reg I.r6, I.Reg I.r5);
          I.Label "use_m";
          I.Move (I.Reg I.r5, I.Reg I.r6); (* r6 = m for the copy *)
          I.Alu (I.Sub, I.Reg I.r6, I.r8); (* remaining -= m *)
          (* dst = buf + head; new head deferred to r7 *)
          I.Move (I.Reg I.r4, I.Reg I.r7);
          I.Alu (I.Add, I.Reg I.r6, I.r7);
          I.Alu (I.And, I.Imm mask, I.r7);
          I.Move (I.Reg I.r4, I.Reg I.r5);
          I.Alu (I.Add, I.Imm pipe.p_buf, I.r5);
          (* burst_copy wants src in r5, dst in r2 — swap roles here:
             source is the user buffer (r2), destination the pipe *)
          I.Move (I.Reg I.r2, I.Reg I.r4);
          I.Move (I.Reg I.r5, I.Reg I.r2); (* dst = pipe *)
          I.Move (I.Reg I.r4, I.Reg I.r5); (* src = user *)
        ]
      @ burst_copy ~prefix:"w"
      @ [
          (* r5 is now the advanced user pointer: keep it in r2 *)
          I.Move (I.Reg I.r2, I.Reg I.r4); (* advanced pipe ptr (unused) *)
          I.Move (I.Reg I.r5, I.Reg I.r2); (* restore user ptr *)
          I.Move (I.Reg I.r7, I.Abs (head_cell pipe)); (* publish *)
          I.Alu_mem (I.Add, I.Imm 1, I.Abs gauge);
        ]
      @ probe @ span_publish
      @ [
          (* wake a waiting reader *)
          I.Tst (I.Abs (rwait_cell pipe));
          I.B (I.Eq, I.To_label "nowake");
          I.Move (I.Imm 0, I.Abs (rwait_cell pipe));
          I.Hcall (Thread.unblock_hcall k pipe.p_readers);
          I.Label "nowake";
          I.Tst (I.Reg I.r8);
          I.B (I.Ne, I.To_label "retry");
          I.Label "out";
          I.Rte;
        ])

(* read(fd, buf, n): r2 = destination, r3 = count; returns up to n
   words as soon as at least one is available, 0 at EOF (all writers
   closed and the pipe drained). *)
let read_template k pipe ~gauge =
  let mask = pipe.p_cap - 1 in
  let probe = Kernel.trace_probe k (Ktrace.Queue_get (pipe.p_name, true)) in
  (* kspan: the drain side.  r6 holds the word count just copied; every
     parked burst it covers gets its queue-wait hop and closes. *)
  let span_drain =
    Kernel.span_probe k (fun sp m ->
        Kspan.dequeue sp ~queue:pipe.p_desc ~stage:"read"
          ~phase:Kspan.Queue_wait ~weight:(Machine.get_reg m I.r6))
  in
  Template.make ~name:"pipe_read" ~params:[] (fun _ ->
      [
        I.Label "retry";
        I.Move (I.Abs (head_cell pipe), I.Reg I.r4);
        I.Move (I.Abs (tail_cell pipe), I.Reg I.r5);
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Sub, I.Reg I.r5, I.r6);
        I.Alu (I.And, I.Imm mask, I.r6); (* r6 = available *)
        I.B (I.Ne, I.To_label "avail");
        (* empty: EOF if no writers remain.  The availability above is
           stale by the time weof is tested — a writer may publish its
           last burst and close in between.  weof is monotonic and set
           only after the final publish, so re-reading head/tail after
           observing it closes the race: data seen now is final. *)
        I.Tst (I.Abs (weof_cell pipe));
        I.B (I.Eq, I.To_label "do_block");
        I.Move (I.Abs (head_cell pipe), I.Reg I.r4);
        I.Move (I.Abs (tail_cell pipe), I.Reg I.r5);
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Sub, I.Reg I.r5, I.r6);
        I.Alu (I.And, I.Imm mask, I.r6);
        I.B (I.Ne, I.To_label "avail");
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rte;
        I.Label "do_block";
        (* same lost-wakeup guard as the writer side *)
        I.Set_ipl 6;
        I.Move (I.Imm 1, I.Abs (rwait_cell pipe));
        I.Move (I.Abs (head_cell pipe), I.Reg I.r4);
        I.Move (I.Abs (tail_cell pipe), I.Reg I.r5);
        I.Move (I.Reg I.r4, I.Reg I.r6);
        I.Alu (I.Sub, I.Reg I.r5, I.r6);
        I.Alu (I.And, I.Imm mask, I.r6);
        I.B (I.Ne, I.To_label "race_retry");
        I.Tst (I.Abs (weof_cell pipe));
        I.B (I.Ne, I.To_label "race_retry");
      ]
      @ Thread.block_code k pipe.p_readers ~retry:"retry"
      @ [
          I.Label "race_retry";
          I.Move (I.Imm 0, I.Abs (rwait_cell pipe));
          I.Set_ipl 0;
          I.B (I.Always, I.To_label "retry");
          I.Label "avail";
          (* m = min(n, available, contiguous run from tail) *)
          I.Cmp (I.Reg I.r3, I.Reg I.r6);
          I.B (I.Cs, I.To_label "use_avail"); (* avail < n *)
          I.Move (I.Reg I.r3, I.Reg I.r6);
          I.Label "use_avail";
          I.Move (I.Imm pipe.p_cap, I.Reg I.r4);
          I.Alu (I.Sub, I.Reg I.r5, I.r4); (* run = cap - tail *)
          I.Cmp (I.Reg I.r6, I.Reg I.r4);
          I.B (I.Cc, I.To_label "use_m"); (* run >= m *)
          I.Move (I.Reg I.r4, I.Reg I.r6);
          I.Label "use_m";
          I.Move (I.Reg I.r6, I.Reg I.r0); (* return m *)
          (* new tail in r7, published after the copy *)
          I.Move (I.Reg I.r5, I.Reg I.r7);
          I.Alu (I.Add, I.Reg I.r6, I.r7);
          I.Alu (I.And, I.Imm mask, I.r7);
          I.Alu (I.Add, I.Imm pipe.p_buf, I.r5); (* src = buf + tail *)
        ]
      @ burst_copy ~prefix:"r"
      @ [
          I.Move (I.Reg I.r7, I.Abs (tail_cell pipe)); (* publish *)
          I.Alu_mem (I.Add, I.Imm 1, I.Abs gauge);
        ]
      @ probe @ span_drain
      @ [
          I.Tst (I.Abs (wwait_cell pipe));
          I.B (I.Eq, I.To_label "nowake");
          I.Move (I.Imm 0, I.Abs (wwait_cell pipe));
          I.Hcall (Thread.unblock_hcall k pipe.p_writers);
          I.Label "nowake";
          I.Rte;
        ])

(* ---------------------------------------------------------------- *)

let next_pipe_id = ref 0

(* Carcasses kept for reuse: unbounded churn must not grow the list,
   and an overflowing carcass frees its cells normally. *)
let carcass_cap = 8

(* Return a dead pipe's cells and wait queues to the kernel.  The next
   same-capacity pipe reuses them, which keeps its synthesized
   read/write code — descriptor and buffer addresses, memoized
   block/unblock host-call ids — byte-identical with this one's.
   Byte-identity is what lets the synthesis cache hit on reopen. *)
let recycle k pipe =
  (* any spans still parked in this pipe's side-table are going away
     with it *)
  Kernel.span k (fun sp -> Kspan.slot_reset sp ~queue:pipe.p_desc);
  if List.length k.Kernel.pipe_carcasses < carcass_cap then
    k.Kernel.pipe_carcasses <-
      (pipe.p_cap, pipe.p_desc, pipe.p_buf, pipe.p_readers, pipe.p_writers)
      :: k.Kernel.pipe_carcasses
  else begin
    Kalloc.free k.Kernel.alloc pipe.p_desc;
    Kalloc.free k.Kernel.alloc pipe.p_buf
  end

let create k ?(cap = 8192) () =
  if cap land (cap - 1) <> 0 then invalid_arg "Kpipe.create: cap must be a power of 2";
  let id = !next_pipe_id in
  incr next_pipe_id;
  let name = Printf.sprintf "pipe%d" id in
  let rec take acc = function
    | [] -> None
    | (c, desc, buf, readers, writers) :: rest when c = cap ->
      k.Kernel.pipe_carcasses <- List.rev_append acc rest;
      Some (desc, buf, readers, writers)
    | carcass :: rest -> take (carcass :: acc) rest
  in
  match take [] k.Kernel.pipe_carcasses with
  | Some (desc, buf, readers, writers) ->
    (* reset the descriptor; stale buffer words are dead data *)
    let m = k.Kernel.machine in
    for i = 0 to 4 do
      Machine.poke m (desc + i) 0
    done;
    Machine.charge_refs m 5;
    {
      p_name = name;
      p_desc = desc;
      p_buf = buf;
      p_cap = cap;
      p_readers = readers;
      p_writers = writers;
      p_ends = 0;
    }
  | None ->
    let desc = Kalloc.alloc_zeroed k.Kernel.alloc 16 in
    let buf = Kalloc.alloc_zeroed k.Kernel.alloc cap in
    {
      p_name = name;
      p_desc = desc;
      p_buf = buf;
      p_cap = cap;
      p_readers = Kernel.waitq ~name:(name ^ "/readers");
      p_writers = Kernel.waitq ~name:(name ^ "/writers");
      p_ends = 0;
    }

(* Synthesize pipe ends for [tte] and install them as descriptors.
   Returns (read_fd, write_fd). *)
let attach vfs pipe (tte : Kernel.tte) =
  let k = vfs.Vfs.kernel in
  let gauge = tte.Kernel.base + L.off_gauge in
  let tag = Printf.sprintf "pipe/%s/t%d" pipe.p_name tte.Kernel.tid in
  let read_entry =
    Ksynth.entry
      (Ksynth.instantiate k ~name:(tag ^ "/read")
         ~template:(read_template k pipe ~gauge) ~invariants:[])
  in
  let write_entry =
    Ksynth.entry
      (Ksynth.instantiate k ~name:(tag ^ "/write")
         ~template:(write_template k pipe ~gauge) ~invariants:[])
  in
  pipe.p_ends <- pipe.p_ends + 2;
  (* closing an end drops its claim on the synthesized page; the last
     close recycles the pipe's cells for the next [create] *)
  let release_end entry =
    Ksynth.release_entry k entry;
    pipe.p_ends <- pipe.p_ends - 1;
    if pipe.p_ends = 0 then recycle k pipe
  in
  let mk_handlers ~read ~write ~close =
    {
      Vfs.h_read = read;
      h_write = write;
      h_pos_cell = None;
      h_close = close;
      h_fsync = (fun () -> ()); (* pipes have no backing store *)
    }
  in
  let bad = Ksynth.lookup k "bad_fd" in
  let rfd =
    match Vfs.free_fd vfs tte with
    | Some fd ->
      Vfs.install_fd vfs tte ~fd
        (mk_handlers ~read:read_entry ~write:bad ~close:(fun () ->
             release_end read_entry));
      fd
    | None -> invalid_arg "Kpipe.attach: no free read fd"
  in
  let wfd =
    match Vfs.free_fd vfs tte with
    | Some fd ->
      Vfs.install_fd vfs tte ~fd
        (mk_handlers ~read:bad ~write:write_entry ~close:(fun () ->
             (* last writer gone: wake readers so they can see EOF *)
             Machine.poke k.Kernel.machine (weof_cell pipe) 1;
             ignore (Thread.unblock k pipe.p_readers);
             release_end write_entry));
      fd
    | None -> invalid_arg "Kpipe.attach: no free write fd"
  in
  (rfd, wfd)

(* The pipe(2)-style system call: trap 11, returns read fd in r0 and
   write fd in r1. *)
let install_syscall vfs =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  let pipe_id =
    Machine.register_hcall m (fun mm ->
        let tte = Kernel.current_exn k in
        let pipe = create k () in
        let rfd, wfd = attach vfs pipe tte in
        Machine.set_reg mm I.r0 rfd;
        Machine.set_reg mm I.r1 wfd;
        Machine.charge mm 80)
  in
  let entry, _ =
    Ksynth.install k ~name:"syscall/pipe" [ I.Hcall pipe_id; I.Rte ]
  in
  Kernel.set_vector_all k (I.Vector.trap 11) entry
