(** SMP load balancing: thread migration and work stealing.

    A thread's home core is baked into its synthesized switch code, so
    migration is resynthesis with the destination core's invariants.
    The dispatch guard refuses to move a thread whose context is split
    between its TTE and its home core's registers (it is that core's
    current thread, or the core's PC sits inside the thread's own
    synthesized pages mid-switch). *)

(** Sabotage lever (tests/explorer only): skip the dispatch guard so
    harness invariants can demonstrate the corruption it prevents. *)
val unsafe_skip_guard : bool ref

(** Is [t]'s home core executing inside one of [t]'s synthesized
    pages? *)
val mid_dispatch : Kernel.t -> Kernel.tte -> bool

(** May [t] be pulled off its home ring right now? *)
val stealable : Kernel.t -> Kernel.tte -> bool

(** Move [t] to [cpu]; [false] if the dispatch guard refuses.  Raises
    on a bad core id or an idle thread (pinned). *)
val migrate : Kernel.t -> Kernel.tte -> cpu:int -> bool

(** Non-idle ready threads on core [c]'s ring. *)
val load : Kernel.t -> int -> int

(** Steal one thread for [thief] from the most loaded other core
    (victim keeps at least one); bumps "smp.steals_total". *)
val steal : Kernel.t -> thief:int -> Kernel.tte option

(** Periodic stealer device for one core: when [cpu]'s ring holds no
    real work, try to steal some (default every 500 µs). *)
val install_stealer :
  Kernel.t -> cpu:int -> ?period_us:int -> unit -> Quamachine.Machine.device

(** The "smp.migrations_total" / "smp.steals_total" counters. *)
val migrations : Kernel.t -> int

val steals : Kernel.t -> int
