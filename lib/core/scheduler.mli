(** Fine-grain scheduling (§4.4): round-robin order comes from the
    executable ready queue; this module retunes each thread's CPU
    quantum from its measured I/O rate by patching the quantum
    immediate in the thread's synthesized switch-in code. *)

type t

(** Install as a periodic machine device rebalancing every
    [epoch_us]. *)
val install :
  Kernel.t -> ?epoch_us:int -> ?min_quantum:int -> ?max_quantum:int -> unit -> t

(** One rebalancing pass (also runs automatically each epoch). *)
val rebalance : t -> unit

(** Expected CPU share of a thread under the current quanta:
    quantum / sum of quanta (§4.4). *)
val cpu_share : t -> Kernel.tte -> float

val epochs : t -> int

(** The scheduler's metrics registry ([sched.rebalances],
    [sched.retunes], epoch records).  Shared with the kernel's ktrace
    registry when tracing was attached before [install]. *)
val metrics : t -> Metrics.t

(** Epoch history, newest first. *)
val history : t -> Metrics.epoch_record list
