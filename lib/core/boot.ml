(* Kernel bring-up.

   Installs the boot-time shared kernel code (default trap and error
   handlers, the thread-operation system calls), creates the idle
   thread, wires up the name space, and transfers control to the first
   thread by jumping into its synthesized switch-in code. *)

open Quamachine
module I = Insn

type t = {
  kernel : Kernel.t;
  vfs : Vfs.t;
  idle : Kernel.tte; (* core 0's idle thread *)
  mutable at_boot : (unit -> unit) list;
      (* run (in registration order) by [go] once the scheduler is
         entered, before user threads get the machine — file-system
         recovery hooks live here *)
}

let at_boot b f = b.at_boot <- b.at_boot @ [ f ]

(* ---------------------------------------------------------------- *)
(* Termination policy: when the last non-idle thread exits, halt the
   simulation. *)

let live_threads k =
  Hashtbl.fold
    (fun _ t acc -> if t.Kernel.state <> Kernel.Zombie then t :: acc else acc)
    k.Kernel.threads []

(* Are there any non-system, non-zombie threads left at all?  Kernel
   service threads (idle, tty filter, pumps) don't keep the machine
   alive on their own. *)
let work_remaining k =
  List.exists (fun t -> not t.Kernel.is_system) (live_threads k)

(* ---------------------------------------------------------------- *)
(* Shared handlers *)

let install_fault_handlers k =
  let kill reason m =
    (* everything here keys off the *executing* core: its current
       thread dies and its own ready ring supplies the successor *)
    let cpu = Kernel.this_cpu k in
    let cur = Kernel.current_exn k in
    Kernel.log_fault k ~tid:cur.Kernel.tid ~reason;
    let next =
      if Ready_queue.in_queue cur then Some (Ready_queue.next_exn cur)
      else Kernel.anchor k cpu
    in
    Thread.destroy k cur;
    if not (work_remaining k) then Machine.set_halted m true
    else
      match (next, Kernel.anchor k cpu) with
      | Some n, _ when n.Kernel.state = Kernel.Ready && Ready_queue.in_queue n ->
        Machine.set_pc m n.Kernel.sw_in_mmu
      | _, Some a -> Machine.set_pc m a.Kernel.sw_in_mmu
      | _, None -> Machine.set_halted m true
  in
  let install vector reason =
    let id = Machine.register_hcall k.Kernel.machine (kill reason) in
    let entry, _ =
      Ksynth.install k ~name:("fault/" ^ reason) [ I.Set_ipl 7; I.Hcall id ]
    in
    k.Kernel.default_vectors.(vector) <- entry
  in
  install I.Vector.bus_error "bus_error";
  (* kheal detection channel: the machine rewinds the PC to the
     faulting instruction before taking the exception, so the frame at
     [sp+1] names the instruction that failed to decode.  If it lies
     inside a registered synthesized region that no longer matches its
     checksum, the fault *is* code corruption: resynthesize the region
     in place and Rte — the repaired instruction re-executes and the
     thread never notices.  Anything else is a genuine illegal
     instruction and kills the thread as before (the kill path sets
     the PC itself, skipping the Rte). *)
  let heal_id =
    Machine.register_hcall k.Kernel.machine (fun m ->
        let pc = Machine.peek m (Machine.get_reg m I.sp + 1) in
        match Kernel.find_region k pc with
        | Some r when Kernel.region_dirty k r ->
          Kernel.repair_region ~origin:"trap" k r
        | Some _ ->
          (* In a region that checksums clean.  A clean region is the
             synthesizer's own output plus recorded patches, which
             never contains an undecodable instruction — so the
             corruption that trapped was already repaired by the other
             detection channel (the watchdog's checksum walk runs on
             device ticks, which can land between the trap and this
             check).  Rte retries the healed instruction; killing here
             would shoot a thread whose code is already correct. *)
          ()
        | None -> kill (Printf.sprintf "illegal@%d(no region)" pc) m)
  in
  let illegal_entry, _ =
    Ksynth.install k ~name:"fault/illegal"
      [ I.Set_ipl 7; I.Hcall heal_id; I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.illegal) <- illegal_entry;
  install I.Vector.div_zero "div_zero";
  install I.Vector.privilege "privilege"

let install_shared_handlers k =
  let m = k.Kernel.machine in
  (* invalid descriptor *)
  let bad_fd, _ =
    Ksynth.install k ~name:"bad_fd" [ I.Move (I.Imm (-1), I.Reg I.r0); I.Rte ]
  in
  ignore bad_fd;
  (* default for unimplemented traps *)
  let unimpl, _ =
    Ksynth.install k ~name:"unimpl_syscall"
      [ I.Move (I.Imm (-1), I.Reg I.r0); I.Rte ]
  in
  for i = 0 to I.Vector.table_size - 1 do
    if k.Kernel.default_vectors.(i) = 0 then k.Kernel.default_vectors.(i) <- unimpl
  done;
  (* Hardware interrupt autovectors must NOT fall back to the trap
     default: returning -1 in r0 is the syscall convention, but an
     interrupt arrives asynchronously and r0 is the interrupted
     thread's live register (kfault found a stray disk irq turning a
     queue op's "would block" into a phantom success).  A stray irq is
     dismissed with a bare Rte, preserving every register. *)
  let stray_irq, _ = Ksynth.install k ~name:"stray_irq" [ I.Rte ] in
  for level = 1 to 7 do
    let v = I.Vector.autovector level in
    if k.Kernel.default_vectors.(v) = unimpl then
      k.Kernel.default_vectors.(v) <- stray_irq
  done;
  install_fault_handlers k;
  (* trap 5: yield — the frame is already on the stack; just switch.
     Shared code, so the switch-out address comes through the per-core
     MMIO window: whichever core yields switches its own thread out. *)
  let yield, _ =
    Ksynth.install k ~name:"syscall/yield"
      [ I.Set_ipl 6; I.Jmp (I.To_mem (I.Abs Mmio_map.cur_sw_out)) ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 5) <- yield;
  (* trap 0: exit — destroy the calling thread and run the next one *)
  let exit_id =
    Machine.register_hcall m (fun m ->
        let cpu = Kernel.this_cpu k in
        let cur = Kernel.current_exn k in
        let next =
          if Ready_queue.in_queue cur then Some (Ready_queue.next_exn cur) else None
        in
        Thread.destroy k cur;
        if not (work_remaining k) then Machine.set_halted m true
        else
          match (next, Kernel.anchor k cpu) with
          | Some n, _ when Ready_queue.in_queue n -> Machine.set_pc m n.Kernel.sw_in_mmu
          | _, Some a -> Machine.set_pc m a.Kernel.sw_in_mmu
          | _, None -> Machine.set_halted m true)
  in
  let exit_h, _ =
    Ksynth.install k ~name:"syscall/exit" [ I.Set_ipl 7; I.Hcall exit_id ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 0) <- exit_h;
  (* trace trap: the debugger's step support — stop the thread again *)
  let trace_stop_id =
    Machine.register_hcall m (fun mm ->
        let cur = Kernel.current_exn k in
        if Ready_queue.in_queue cur then Ready_queue.remove k cur;
        cur.Kernel.state <- Kernel.Stopped;
        (* clear the trace bit in the frame's saved SR *)
        let sp = Machine.get_reg mm I.sp in
        Machine.poke mm sp (Machine.peek mm sp land lnot (1 lsl 15)))
  in
  let trace_h, _ =
    Ksynth.install k ~name:"trap/trace"
      [
        I.Set_ipl 6;
        I.Hcall trace_stop_id;
        I.Jmp (I.To_mem (I.Abs Mmio_map.cur_sw_out));
      ]
  in
  k.Kernel.default_vectors.(I.Vector.trace) <- trace_h;
  (* FP-unavailable: resynthesize the thread's switch code with FP *)
  let fp_id =
    Machine.register_hcall m (fun mm ->
        let cur = Kernel.current_exn k in
        Ctx.resynthesize_with_fp k cur;
        Machine.set_fp_enabled mm true)
  in
  let fp_h, _ =
    Ksynth.install k ~name:"trap/fp_resynth" [ I.Hcall fp_id; I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.fp_unavailable) <- fp_h;
  (* trap 6: signal (r1 = target tid) *)
  let signal_id =
    Machine.register_hcall m (fun mm ->
        let tid = Machine.get_reg mm I.r1 in
        match Kernel.thread k tid with
        | Some target ->
          let ok = Thread.deliver_signal k target in
          Machine.set_reg mm I.r0 (if ok then 0 else -1)
        | None -> Machine.set_reg mm I.r0 (-1))
  in
  let signal_h, _ =
    Ksynth.install k ~name:"syscall/signal" [ I.Hcall signal_id; I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 6) <- signal_h;
  (* trap 8: register signal handler (r1 = handler address) *)
  let sethandler_id =
    Machine.register_hcall m (fun mm ->
        let cur = Kernel.current_exn k in
        Thread.set_signal_handler k cur (Machine.get_reg mm I.r1);
        Machine.set_reg mm I.r0 0)
  in
  let sethandler_h, _ =
    Ksynth.install k ~name:"syscall/sethandler" [ I.Hcall sethandler_id; I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 8) <- sethandler_h;
  (* trap 9: sigreturn — restore the PC stashed at signal delivery,
     or re-enter the trampoline if deliveries were coalesced while the
     handler ran *)
  let sigreturn_id =
    Machine.register_hcall m (fun mm ->
        let cur = Kernel.current_exn k in
        let base = cur.Kernel.base in
        let queued = Machine.peek mm (base + Layout.Tte.off_sig_queued) in
        let sp = Machine.get_reg mm I.sp in
        if queued > 0 then begin
          Machine.poke mm (base + Layout.Tte.off_sig_queued) (queued - 1);
          Machine.poke mm (sp + 1)
            (Machine.peek mm (base + Layout.Tte.off_sig_handler))
        end
        else begin
          Machine.poke mm (base + Layout.Tte.off_sig_inh) 0;
          Machine.poke mm (sp + 1)
            (Machine.peek mm (base + Layout.Tte.off_sig_pending))
        end;
        Machine.charge_refs mm 4)
  in
  let sigreturn, _ =
    Ksynth.install k ~name:"syscall/sigreturn" [ I.Hcall sigreturn_id; I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 9) <- sigreturn;
  (* trap 10: read the microsecond clock into r0 *)
  let gettime, _ =
    Ksynth.install k ~name:"syscall/gettime"
      [ I.Move (I.Abs Mmio_map.rtc_us, I.Reg I.r0); I.Rte ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 10) <- gettime;
  (* trap 7: set alarm (r1 = microseconds); Table 5 "Set alarm".
     The arming thread's tid is read through the per-core window
     (whichever core traps) but stashed in the single global chain
     cell: there is one alarm register, so last-armer-wins applies to
     the chained tid exactly as it does to the deadline. *)
  let alarm_set, _ =
    Ksynth.install k ~name:"syscall/alarm"
      [
        I.Move (I.Abs Mmio_map.cur_tid, I.Abs Layout.chain_scratch_cell);
        I.Move (I.Reg I.r1, I.Abs Mmio_map.alarm_set);
        I.Move (I.Imm 0, I.Reg I.r0);
        I.Rte;
      ]
  in
  k.Kernel.default_vectors.(I.Vector.trap 7) <- alarm_set;
  (* alarm interrupt: signal the thread that armed it (Table 5) *)
  let alarm_fired_id =
    Machine.register_hcall m (fun mm ->
        let tid = Machine.peek mm Layout.chain_scratch_cell in
        match Kernel.thread k tid with
        | Some target -> ignore (Thread.deliver_signal k target)
        | None -> ())
  in
  let alarm_irq, _ =
    Ksynth.install k ~name:"irq/alarm" [ I.Hcall alarm_fired_id; I.Rte ]
  in
  k.Kernel.default_vectors.(Mmio_map.alarm_vector) <- alarm_irq;
  (* cross-core signal IPI: re-deliver queued signals on the home core *)
  let sig_ipi_id =
    Machine.register_hcall m (fun _ -> Thread.drain_cross_signals k)
  in
  let sig_ipi_h, _ =
    Ksynth.install k ~name:"irq/sig_ipi" [ I.Hcall sig_ipi_id; I.Rte ]
  in
  k.Kernel.default_vectors.(Thread.sig_ipi_vector) <- sig_ipi_h;
  (* NIC interrupt: the serving pumps poll their mailbox cells, so the
     card's interrupt is only a wakeup kick — acknowledge and return. *)
  let nic_irq, _ = Ksynth.install k ~name:"irq/nic" [ I.Rte ] in
  k.Kernel.default_vectors.(Mmio_map.nic_vector) <- nic_irq

(* ---------------------------------------------------------------- *)
(* The idle thread: waits for interrupts in supervisor mode. *)

(* Each core gets its own idle thread, pinned there; the idle *code*
   is one shared page ([Ksynth.install] memoizes on name + body). *)
let create_idle ?(cpu = 0) k =
  let idle_code, _ =
    Ksynth.install k ~name:"idle_loop"
      [ I.Label "idle"; I.Stop_wait; I.B (I.Always, I.To_label "idle") ]
  in
  let idle =
    Thread.create k ~cpu ~quantum_us:10_000 ~system:true ~entry:idle_code ()
  in
  (* the idle loop needs supervisor state for Stop_wait *)
  Machine.poke k.Kernel.machine
    (idle.Kernel.base + Layout.Tte.off_regs + 16)
    Ctx.kernel_sr;
  Kernel.set_idle k cpu idle;
  idle

(* ---------------------------------------------------------------- *)

let boot ?(cost = Cost.sun3_emulation) ?(mem_words = 1 lsl 20) ?(cores = 1) () =
  let k = Kernel.create ~cost ~mem_words ~cores () in
  install_shared_handlers k;
  let vfs = Vfs.install k in
  Fs.register_null vfs;
  let idle = create_idle k in
  for c = 1 to cores - 1 do
    ignore (create_idle ~cpu:c k)
  done;
  (* crash recovery: make Thread.restart reachable from layers below
     Thread (Kernel.restart_thread) *)
  k.Kernel.restart_hook <- Some (fun t -> Thread.restart k t);
  { kernel = k; vfs; idle; at_boot = [] }

(* Bring one secondary core up: stage its supervisor context on a
   private boot stack, aim it at its ring's switch-in, and wake it. *)
let start_secondary k cpu =
  let m = k.Kernel.machine in
  match Kernel.anchor k cpu with
  | None -> invalid_arg "Boot.start_secondary: empty ready ring"
  | Some t ->
    let stack = Kalloc.alloc k.Kernel.alloc 64 in
    Machine.set_active_core m cpu;
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp (stack + 64);
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu;
    Machine.start_core m cpu

(* Enter the scheduler: each secondary core is staged and woken on its
   own ready ring, then core 0 jumps into its ring's switch-in from a
   fresh boot stack. *)
let enter_scheduler k =
  let m = k.Kernel.machine in
  for c = 1 to Kernel.cores k - 1 do
    if (not (Machine.core_started m c)) && Kernel.anchor k c <> None then
      start_secondary k c
  done;
  Machine.set_active_core m 0;
  match Kernel.anchor k 0 with
  | None -> invalid_arg "Boot.go: no runnable threads"
  | Some t ->
    Machine.set_supervisor m true;
    Machine.set_reg m I.sp Layout.boot_stack_top;
    Machine.set_ipl m 7;
    Machine.set_pc m t.Kernel.sw_in_mmu

(* How many double-fault recoveries one [go] will attempt before
   giving up: a thread that double-faults right back from its entry
   point must not keep the machine alive forever. *)
let double_fault_restart_cap = 3

(* Transfer control to the thread scheduler and run the machine.

   A double fault halts the machine directly (the exception entry
   itself faulted; there is no frame left to recover with); it is
   always recorded so post-mortems see why.  With
   [restart_on_double_fault] the faulting thread is additionally
   restarted through [Kernel.restart_thread] — fresh initial context,
   front of the ready queue — and the scheduler re-entered from a
   clean boot stack, at most [double_fault_restart_cap] times. *)
let go ?(max_insns = max_int) ?(restart_on_double_fault = false) b =
  let k = b.kernel in
  let m = k.Kernel.machine in
  let start = Machine.insns_executed m in
  (* a previous [go] on this boot may have exited through the idle
     thread's halt; new runnable work means the machine must run again *)
  Machine.set_halted m false;
  (* boot-time hooks (log replay, mounts) may step the machine through
     [read_block_sync]-style waits, so they run parked on the idle
     thread: recovery must finish before any user thread can look at
     the file system *)
  (match b.at_boot with
  | [] -> ()
  | hooks ->
    b.at_boot <- [];
    (match Kernel.idle_of k 0 with
    | Some idle ->
      Machine.set_supervisor m true;
      Machine.set_reg m I.sp Layout.boot_stack_top;
      Machine.set_ipl m 0;
      Machine.set_pc m idle.Kernel.sw_in_mmu
    | None -> ());
    List.iter (fun f -> f ()) hooks;
    (* a boot that exists only to recover has no user work to run *)
    if not (work_remaining k) then Machine.set_halted m true);
  enter_scheduler k;
  let rec drive restarts =
    let budget = max_insns - (Machine.insns_executed m - start) in
    let r = Machine.run ~max_insns:(max budget 0) m in
    if not (Machine.double_faulted m) then r
    else begin
      let cur = Kernel.current k in
      let tid = match cur with Some t -> t.Kernel.tid | None -> 0 in
      Kernel.log_fault k ~tid ~reason:"double_fault";
      (* flight recorder: capture the black box while the wreckage is
         fresh (retrievable from [Kernel.last_postmortem]) *)
      ignore (Kernel.postmortem ~reason:(Fmt.str "double fault (tid %d)" tid) k);
      match cur with
      | Some t
        when restart_on_double_fault
             && restarts < double_fault_restart_cap
             && budget > 0 ->
        Machine.clear_double_fault m;
        Machine.set_halted m false;
        Kernel.restart_thread k t;
        enter_scheduler k;
        drive (restarts + 1)
      | _ -> r
    end
  in
  drive 0
