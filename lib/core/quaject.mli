(** Quaject building blocks and the interfacer's connection analysis
    (§2.3, §5.2): the case table that picks the cheapest connector for
    each producer/consumer pairing, plus monitors, switches, and
    gauges as installable kernel code. *)

type endpoint = Active | Passive
type multiplicity = Single | Multiple

(** One end of a connection: [end_] says whether the participant
    drives control flow; [mult] how many participants share the end. *)
type port = { end_ : endpoint; mult : multiplicity }

(** [port ?mult e] — [mult] defaults to [Single]. *)
val port : ?mult:multiplicity -> endpoint -> port

type connector =
  | Procedure_call
  | Monitored_call
  | Queue_spsc
  | Queue_mpsc
  | Queue_spmc
  | Queue_mpmc
  | Pump_thread

(** The §5.2 case analysis — the principle of frugality applied to
    connections. *)
val connect : producer:port -> consumer:port -> connector

val connector_name : connector -> string

(** {1 Monitor}: serializes multiple participants at one end.
    [mon_enter]/[mon_exit] are kernel subroutines (Jsr/Rts) around a
    CAS spin lock. *)

type monitor = { mon_lock : int; mon_enter : int; mon_exit : int }

val create_monitor : Kernel.t -> name:string -> monitor

(** {1 Switch}: routes control flow by a selector in r1 through a
    retargetable table in data memory (§2.3). *)

type switch = { sw_table : int; sw_entry : int; sw_size : int }

val create_switch : Kernel.t -> name:string -> int array -> switch
val retarget : Kernel.t -> switch -> index:int -> target:int -> unit

(** {1 Gauge}: an event counter in kernel memory plus the
    one-instruction fragment synthesized routines embed to tick it. *)

type gauge = { g_cell : int }

val create_gauge : Kernel.t -> gauge
val tick_fragment : gauge -> Quamachine.Insn.insn list
val gauge_count : Kernel.t -> gauge -> int
