(* Name space and the open/close kernel calls (§6.2–6.3).

   `open` is where kernel code synthesis pays off: it finds the named
   quaject (hashed string names, stored backwards — ~60% of the cost
   of opening /dev/null), then asks the quaject to synthesize
   specialized read/write routines for the calling thread (~40%), and
   installs their entry points in the caller's fd tables.  Later reads
   jump straight into the specialized routine. *)

open Quamachine
module L = Layout.Tte

type handlers = {
  h_read : int; (* code address of the synthesized read routine *)
  h_write : int; (* code address of the synthesized write routine *)
  h_pos_cell : int option; (* seek position cell, when seekable *)
  h_close : unit -> unit; (* release per-open resources *)
  h_fsync : unit -> unit; (* initiate write-back of this open's dirty state *)
}

type open_fn = Kernel.tte -> fd:int -> handlers

type t = {
  kernel : Kernel.t;
  names : (string, open_fn) Hashtbl.t; (* keyed by the reversed name *)
  opens : (int * int, handlers) Hashtbl.t; (* (tid, fd) -> handlers *)
  mutable syncs : (unit -> unit) list; (* file-system sync hooks (trap 14) *)
}

let reverse s = String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

(* Cost model for the hashed backwards-name directory search,
   calibrated against the paper's "60% of 49 us to find the file". *)
let lookup_charge k name =
  Machine.charge k.Kernel.machine (60 + (45 * String.length name))

let register t ~name open_fn = Hashtbl.replace t.names (reverse name) open_fn
let unregister t ~name = Hashtbl.remove t.names (reverse name)

(* File systems register a hook that initiates write-back of their
   dirty state; `sync` (trap 14) runs them all. *)
let on_sync t f = t.syncs <- f :: t.syncs
let sync t = List.iter (fun f -> f ()) t.syncs

let lookup t name =
  lookup_charge t.kernel name;
  Hashtbl.find_opt t.names (reverse name)

(* Read a NUL-terminated string from data memory (host-side, charged). *)
let read_string k addr =
  let m = k.Kernel.machine in
  let buf = Buffer.create 16 in
  let rec go a n =
    if n > 128 then None
    else
      let w = Machine.peek m a in
      if w = 0 then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Char.chr (w land 0x7F));
        go (a + 1) (n + 1)
      end
  in
  let r = go addr 0 in
  Machine.charge_refs m (Buffer.length buf + 1);
  r

(* Find a free descriptor by scanning the thread's fd table for the
   shared bad_fd entry. *)
let free_fd t (tte : Kernel.tte) =
  let m = t.kernel.Kernel.machine in
  let bad = Ksynth.lookup t.kernel "bad_fd" in
  let rec scan i =
    if i >= L.max_fds then None
    else if Machine.peek m (tte.Kernel.base + L.off_fd_read + i) = bad then Some i
    else scan (i + 1)
  in
  let r = scan 0 in
  Machine.charge t.kernel.Kernel.machine 8;
  r

let install_fd t (tte : Kernel.tte) ~fd (h : handlers) =
  let m = t.kernel.Kernel.machine in
  Machine.poke m (tte.Kernel.base + L.off_fd_read + fd) h.h_read;
  Machine.poke m (tte.Kernel.base + L.off_fd_write + fd) h.h_write;
  Machine.charge_refs m 2;
  Hashtbl.replace t.opens (tte.Kernel.tid, fd) h

(* Host-side open: shared with the trap handler.  Returns the fd. *)
let open_named t (tte : Kernel.tte) name =
  match lookup t name with
  | None -> None
  | Some f -> (
    match free_fd t tte with
    | None -> None
    | Some fd ->
      let h = f tte ~fd in
      install_fd t tte ~fd h;
      Some fd)

let close_fd t (tte : Kernel.tte) fd =
  match Hashtbl.find_opt t.opens (tte.Kernel.tid, fd) with
  | None -> false
  | Some h ->
    h.h_close ();
    let m = t.kernel.Kernel.machine in
    let bad = Ksynth.lookup t.kernel "bad_fd" in
    Machine.poke m (tte.Kernel.base + L.off_fd_read + fd) bad;
    Machine.poke m (tte.Kernel.base + L.off_fd_write + fd) bad;
    Machine.charge_refs m 2;
    Machine.charge m 200; (* descriptor teardown bookkeeping *)
    Hashtbl.remove t.opens (tte.Kernel.tid, fd);
    true

let fsync_fd t (tte : Kernel.tte) fd =
  match Hashtbl.find_opt t.opens (tte.Kernel.tid, fd) with
  | None -> false
  | Some h ->
    h.h_fsync ();
    Machine.charge t.kernel.Kernel.machine 30; (* descriptor lookup + dispatch *)
    true

let seek t (tte : Kernel.tte) fd pos =
  match Hashtbl.find_opt t.opens (tte.Kernel.tid, fd) with
  | Some { h_pos_cell = Some cell; _ } ->
    Machine.poke t.kernel.Kernel.machine cell pos;
    Machine.charge_refs t.kernel.Kernel.machine 1;
    true
  | _ -> false

(* -------------------------------------------------------------- *)
(* Trap handlers: open = trap 3 (r1 = name ptr), close = trap 4
   (r1 = fd), lseek = trap 12 (r1 = fd, r2 = position), fsync =
   trap 13 (r1 = fd), sync = trap 14.

   fsync/sync initiate write-back from inside the trap (submitting
   transfers is pure queue work); the completions land through the
   ordinary disk interrupt as the machine keeps running, ordered
   ahead of any later write by the submission barrier. *)

let install k =
  let t =
    {
      kernel = k;
      names = Hashtbl.create 32;
      opens = Hashtbl.create 64;
      syncs = [];
    }
  in
  let m = k.Kernel.machine in
  let open_id =
    Machine.register_hcall m (fun m ->
        let tte = Kernel.current_exn k in
        let result =
          match read_string k (Machine.get_reg m Insn.r1) with
          | None -> None
          | Some name -> open_named t tte name
        in
        Machine.set_reg m Insn.r0 (match result with Some fd -> fd | None -> -1))
  in
  let close_id =
    Machine.register_hcall m (fun m ->
        let tte = Kernel.current_exn k in
        let ok = close_fd t tte (Machine.get_reg m Insn.r1) in
        Machine.set_reg m Insn.r0 (if ok then 0 else -1))
  in
  let seek_id =
    Machine.register_hcall m (fun m ->
        let tte = Kernel.current_exn k in
        let ok = seek t tte (Machine.get_reg m Insn.r1) (Machine.get_reg m Insn.r2) in
        Machine.set_reg m Insn.r0 (if ok then 0 else -1))
  in
  let fsync_id =
    Machine.register_hcall m (fun m ->
        let tte = Kernel.current_exn k in
        let ok = fsync_fd t tte (Machine.get_reg m Insn.r1) in
        Machine.set_reg m Insn.r0 (if ok then 0 else -1))
  in
  let sync_id =
    Machine.register_hcall m (fun m ->
        sync t;
        Machine.charge m 40;
        Machine.set_reg m Insn.r0 0)
  in
  let handler name id =
    let entry, _ = Ksynth.install k ~name [ Insn.Hcall id; Insn.Rte ] in
    entry
  in
  Kernel.set_vector_all k (Insn.Vector.trap 3) (handler "vfs/open" open_id);
  Kernel.set_vector_all k (Insn.Vector.trap 4) (handler "vfs/close" close_id);
  Kernel.set_vector_all k (Insn.Vector.trap 12) (handler "vfs/lseek" seek_id);
  Kernel.set_vector_all k (Insn.Vector.trap 13) (handler "vfs/fsync" fsync_id);
  Kernel.set_vector_all k (Insn.Vector.trap 14) (handler "vfs/sync" sync_id);
  t
