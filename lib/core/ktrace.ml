(* Cycle-attributed kernel tracing (§6.1's measurement facility grown
   into a first-class subsystem).

   Three cooperating pieces:

   - a bounded ring buffer of typed events, each stamped with the
     machine cycle counter at emission;
   - host-side machine hooks (interrupt post/accept, device ticks,
     faults) that cost no simulated cycles at all;
   - synthesized-code probes: one-instruction [Hcall] fragments that
     the synthesizer splices into generated routines (context switch
     prologues, queue put/get) *only when tracing is enabled at
     synthesis time*.  With tracing off the fragments are empty lists,
     so traced and untraced kernels execute identical code — the
     tracing-off overhead is exactly zero cycles.

   Cycle attribution rides on the machine's pc→owner map: every
   registered routine becomes an owner, every elapsed cycle lands on
   exactly one owner, and the per-owner totals sum to the machine
   total over the traced window. *)

open Quamachine
module I = Insn

type kind =
  | Switch_out of int (* tid leaving the CPU *)
  | Switch_in of int (* tid entering the CPU *)
  | Queue_put of string * bool (* queue name, success (false = full) *)
  | Queue_get of string * bool (* queue name, success (false = empty) *)
  | Block of string * int (* wait-queue name, tid *)
  | Unblock of string * int
  | Synthesized of string * int (* routine name, instruction count *)
  | Patched of int (* code address rewritten in place *)
  | Rebalance of int (* scheduler epoch number *)
  | Irq_posted of string * int (* device source, level *)
  | Irq_enter of int * int (* level, vector *)
  | Device_tick of string
  | Fault of string
  | Span_open of int * string (* span id, pipeline name *)
  | Span_hop of int * string (* span id, "stage/phase" *)
  | Span_close of int * string (* span id, pipeline name *)
  | Retune of int * int (* tid, new quantum (us) *)

type event = { ev_cycles : int; ev_kind : kind }

type t = {
  machine : Machine.t;
  metrics : Metrics.t;
  mutable enabled : bool;
  ring : event option array;
  mutable pos : int;
  mutable count : int; (* total emitted, including dropped *)
  (* The flight-recorder black box: a small ring that records every
     event reaching [emit] even while collection is disabled.  It is
     pure host-side state — writing it charges no simulated cycles —
     so it can stay on for the life of the kernel and still leave
     disabled runs cycle-identical. *)
  bb_ring : event option array;
  mutable bb_pos : int;
  mutable bb_count : int;
  mutable owners : (string * int) list; (* name, owner id; newest first *)
  mutable next_owner : int;
  mutable base_cycles : int; (* machine cycles when tracing was installed *)
}

let create ?(capacity = 65536) ?(blackbox = 256) ?(enabled = true) machine =
  if capacity <= 0 then invalid_arg "Ktrace.create: capacity";
  if blackbox <= 0 then invalid_arg "Ktrace.create: blackbox";
  {
    machine;
    metrics = Metrics.create ();
    enabled;
    ring = Array.make capacity None;
    pos = 0;
    count = 0;
    bb_ring = Array.make blackbox None;
    bb_pos = 0;
    bb_count = 0;
    owners = [];
    next_owner = Machine.owner_first;
    base_cycles = Machine.cycles machine;
  }

let machine t = t.machine
let metrics t = t.metrics
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let kind_name = function
  | Switch_out _ -> "switch_out"
  | Switch_in _ -> "switch_in"
  | Queue_put _ -> "queue_put"
  | Queue_get _ -> "queue_get"
  | Block _ -> "block"
  | Unblock _ -> "unblock"
  | Synthesized _ -> "synthesized"
  | Patched _ -> "patched"
  | Rebalance _ -> "rebalance"
  | Irq_posted _ -> "irq_posted"
  | Irq_enter _ -> "irq_enter"
  | Device_tick _ -> "device_tick"
  | Fault _ -> "fault"
  | Span_open _ -> "span_open"
  | Span_hop _ -> "span_hop"
  | Span_close _ -> "span_close"
  | Retune _ -> "retune"

let emit t kind =
  let e = { ev_cycles = Machine.cycles t.machine; ev_kind = kind } in
  t.bb_ring.(t.bb_pos) <- Some e;
  t.bb_pos <- (t.bb_pos + 1) mod Array.length t.bb_ring;
  t.bb_count <- t.bb_count + 1;
  if t.enabled then begin
    t.ring.(t.pos) <- Some e;
    t.pos <- (t.pos + 1) mod Array.length t.ring;
    t.count <- t.count + 1;
    Metrics.bump t.metrics ("ktrace.events." ^ kind_name kind)
  end

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.pos <- 0;
  t.count <- 0

(* Oldest first. *)
let ring_events ring pos count =
  let cap = Array.length ring in
  let n = min count cap in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match ring.((pos - n + i + (2 * cap)) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let events t = ring_events t.ring t.pos t.count
let blackbox_events t = ring_events t.bb_ring t.bb_pos t.bb_count
let event_count t = t.count
let dropped t = max 0 (t.count - Array.length t.ring)

(* ------------------------------------------------------------------ *)
(* Owners: pc-range → name, riding on the machine attribution map *)

let register_owner t ~name ~entry ~len =
  let id = t.next_owner in
  t.next_owner <- id + 1;
  t.owners <- (name, id) :: t.owners;
  Machine.set_owner_range t.machine ~entry ~len ~owner:id;
  id

let owner_name t id =
  if id = Machine.owner_unowned then "(user/unowned)"
  else if id = Machine.owner_host then "(host services)"
  else if id = Machine.owner_idle then "(idle)"
  else if id = Machine.owner_irq then "(irq delivery)"
  else
    match List.find_opt (fun (_, i) -> i = id) t.owners with
    | Some (n, _) -> n
    | None -> Fmt.str "(owner %d)" id

(* Per-owner cycle totals, every owner that accumulated anything,
   biggest first.  Call sites should [Machine.attribution_flush]
   first; [owner_cycles] does it for them. *)
let owner_cycles t =
  Machine.attribution_flush t.machine;
  let out = ref [] in
  for id = 0 to Machine.max_owner t.machine do
    let cy = Machine.owner_cycles t.machine id in
    if cy > 0 then out := (owner_name t id, cy) :: !out
  done;
  List.sort (fun (_, a) (_, b) -> compare b a) !out

let attributed_total t =
  Machine.attribution_flush t.machine;
  let total = ref 0 in
  for id = 0 to Machine.max_owner t.machine do
    total := !total + Machine.owner_cycles t.machine id
  done;
  !total

let traced_cycles t = Machine.cycles t.machine - t.base_cycles

(* Group registered-owner totals by quaject: the first '/'-separated
   component of the routine name ("sw_out/t2" → "sw_out", "open/fd3"
   → "open").  Reserved owners keep their parenthesized names, so the
   groups still partition the traced window exactly. *)
let quaject_of_name name =
  if String.length name > 0 && name.[0] = '(' then name
  else match String.index_opt name '/' with
    | Some i -> String.sub name 0 i
    | None -> name

let quaject_cycles t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, cy) ->
      let q = quaject_of_name name in
      Hashtbl.replace tbl q (cy + Option.value ~default:0 (Hashtbl.find_opt tbl q)))
    (owner_cycles t);
  Hashtbl.fold (fun q cy acc -> (q, cy) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Per-thread CPU time from the switch events: cycles between each
   Switch_in(tid) and the next Switch_out(tid).  Approximate when the
   ring has dropped events. *)
let thread_cycles t =
  let tbl = Hashtbl.create 8 in
  let running = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.ev_kind with
      | Switch_in tid -> Hashtbl.replace running tid e.ev_cycles
      | Switch_out tid -> (
        match Hashtbl.find_opt running tid with
        | Some t0 ->
          Hashtbl.remove running tid;
          Hashtbl.replace tbl tid
            (e.ev_cycles - t0 + Option.value ~default:0 (Hashtbl.find_opt tbl tid))
        | None -> ())
      | _ -> ())
    (events t);
  (* threads still on CPU at the end of the trace *)
  let now = Machine.cycles t.machine in
  Hashtbl.iter
    (fun tid t0 ->
      Hashtbl.replace tbl tid
        (now - t0 + Option.value ~default:0 (Hashtbl.find_opt tbl tid)))
    running;
  Hashtbl.fold (fun tid cy acc -> (tid, cy) :: acc) tbl [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Machine hooks: free observability, no simulated cycles *)

let install_machine_hooks t =
  let fault_name = function
    | Machine.Bus_error _ -> "bus_error"
    | Machine.Div_zero -> "div_zero"
    | Machine.Privilege -> "privilege"
    | Machine.Illegal -> "illegal"
    | Machine.Fp_unavailable -> "fp_unavailable"
  in
  Machine.set_hooks t.machine
    (Some
       {
         Machine.h_post = (fun ~source ~level ~vector:_ -> emit t (Irq_posted (source, level)));
         h_irq = (fun ~level ~vector -> emit t (Irq_enter (level, vector)));
         h_device = (fun name -> emit t (Device_tick name));
         h_fault = (fun f -> emit t (Fault (fault_name f)));
       })

(* Install everything that doesn't need the kernel: hooks plus the
   cycle-attribution window starting now.  [Kernel.attach_tracing]
   calls this and then registers the already-synthesized routines as
   owners. *)
let install t =
  install_machine_hooks t;
  Machine.attribution_enable t.machine true;
  t.base_cycles <- Machine.cycles t.machine

(* ------------------------------------------------------------------ *)
(* Synthesized-code probes *)

(* A probe is an instruction fragment spliced into generated code at
   synthesis time.  When tracing is disabled at synthesis time the
   fragment is empty — the traced and untraced kernels run identical
   instruction streams, so the tracing-off overhead is zero cycles.
   When enabled, the fragment is a single [Hcall] (2 cycles). *)
let probe t kind =
  if not t.enabled then []
  else
    let id = Machine.register_hcall t.machine (fun _ -> emit t kind) in
    [ I.Hcall id ]

(* Probe whose payload depends on the routine's status result: reads
   r0 at execution time (the generated queue/pipe convention: r0 = 1
   done, 0 would-block). *)
let probe_status t f =
  if not t.enabled then []
  else
    let id =
      Machine.register_hcall t.machine (fun m ->
          emit t (f (Machine.get_reg m I.r0 <> 0)))
    in
    [ I.Hcall id ]

(* ------------------------------------------------------------------ *)
(* Text summary *)

let pp_kind ppf = function
  | Switch_out tid -> Fmt.pf ppf "switch_out tid=%d" tid
  | Switch_in tid -> Fmt.pf ppf "switch_in tid=%d" tid
  | Queue_put (q, ok) -> Fmt.pf ppf "queue_put %s ok=%b" q ok
  | Queue_get (q, ok) -> Fmt.pf ppf "queue_get %s ok=%b" q ok
  | Block (wq, tid) -> Fmt.pf ppf "block %s tid=%d" wq tid
  | Unblock (wq, tid) -> Fmt.pf ppf "unblock %s tid=%d" wq tid
  | Synthesized (name, n) -> Fmt.pf ppf "synthesized %s insns=%d" name n
  | Patched addr -> Fmt.pf ppf "patched @%d" addr
  | Rebalance n -> Fmt.pf ppf "rebalance epoch=%d" n
  | Irq_posted (src, level) -> Fmt.pf ppf "irq_posted %s L%d" src level
  | Irq_enter (level, vector) -> Fmt.pf ppf "irq_enter L%d vec=%d" level vector
  | Device_tick name -> Fmt.pf ppf "device_tick %s" name
  | Fault name -> Fmt.pf ppf "fault %s" name
  | Span_open (id, p) -> Fmt.pf ppf "span_open #%d %s" id p
  | Span_hop (id, stage) -> Fmt.pf ppf "span_hop #%d %s" id stage
  | Span_close (id, p) -> Fmt.pf ppf "span_close #%d %s" id p
  | Retune (tid, q) -> Fmt.pf ppf "retune tid=%d quantum=%dus" tid q

let pp_event ppf e = Fmt.pf ppf "%10d  %a" e.ev_cycles pp_kind e.ev_kind

let pp_summary ppf t =
  Fmt.pf ppf "ktrace: %d events (%d dropped), %d cycles traced@."
    t.count (dropped t) (traced_cycles t);
  let counts =
    List.filter
      (fun (n, _) ->
        String.length n > 14 && String.sub n 0 14 = "ktrace.events.")
      (Metrics.counters t.metrics)
  in
  List.iter
    (fun (n, v) ->
      Fmt.pf ppf "  %-28s %8d@." (String.sub n 14 (String.length n - 14)) v)
    counts;
  Fmt.pf ppf "cycles by quaject:@.";
  let total = max 1 (attributed_total t) in
  List.iter
    (fun (q, cy) ->
      Fmt.pf ppf "  %-28s %10d cycles  %5.1f%%@." q cy
        (100.0 *. float_of_int cy /. float_of_int total))
    (quaject_cycles t);
  (match thread_cycles t with
  | [] -> ()
  | per_thread ->
    Fmt.pf ppf "cpu time by thread (from switch events):@.";
    List.iter
      (fun (tid, cy) -> Fmt.pf ppf "  thread %-21d %10d cycles@." tid cy)
      per_thread);
  let sched = Metrics.epoch_history t.metrics in
  if sched <> [] then
    Fmt.pf ppf "scheduler: %d rebalance epochs recorded@." (List.length sched)

(* ------------------------------------------------------------------ *)
(* Chrome trace export (chrome://tracing / Perfetto JSON) *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ts_of_cycles t cy = Cost.us_of_cycles (Machine.cost_model t.machine) cy

let chrome_event t b e =
  let ts = ts_of_cycles t e.ev_cycles in
  let common ~name ~cat ~ph ~tid ~args =
    Buffer.add_string b
      (Fmt.str
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d%s}"
         (json_escape name) cat ph ts tid args)
  in
  let instant ?(tid = 0) ?(args = "") name cat =
    let args = if args = "" then "" else Fmt.str ",\"args\":{%s}" args in
    common ~name ~cat ~ph:"i" ~tid ~args:(args ^ ",\"s\":\"g\"")
  in
  match e.ev_kind with
  | Switch_in tid -> common ~name:(Fmt.str "thread %d" tid) ~cat:"thread" ~ph:"B" ~tid ~args:""
  | Switch_out tid -> common ~name:(Fmt.str "thread %d" tid) ~cat:"thread" ~ph:"E" ~tid ~args:""
  | Queue_put (q, ok) ->
    instant (Fmt.str "put %s" q) "queue" ~args:(Fmt.str "\"ok\":%b" ok)
  | Queue_get (q, ok) ->
    instant (Fmt.str "get %s" q) "queue" ~args:(Fmt.str "\"ok\":%b" ok)
  | Block (wq, tid) -> instant ~tid (Fmt.str "block %s" wq) "sync"
  | Unblock (wq, tid) -> instant ~tid (Fmt.str "unblock %s" wq) "sync"
  | Synthesized (name, n) ->
    instant (Fmt.str "synthesize %s" name) "synthesis" ~args:(Fmt.str "\"insns\":%d" n)
  | Patched addr -> instant (Fmt.str "patch @%d" addr) "synthesis"
  | Rebalance n -> instant (Fmt.str "rebalance %d" n) "scheduler"
  | Irq_posted (src, level) ->
    instant (Fmt.str "irq post %s" (if src = "" then "?" else src)) "irq"
      ~args:(Fmt.str "\"level\":%d" level)
  | Irq_enter (level, vector) ->
    instant (Fmt.str "irq L%d" level) "irq" ~args:(Fmt.str "\"vector\":%d" vector)
  | Device_tick name -> instant (Fmt.str "tick %s" name) "device"
  | Fault name -> instant (Fmt.str "fault %s" name) "fault"
  (* Spans render as async begin/end pairs keyed by span id, so
     Perfetto draws each request as one horizontal bar with hop
     instants on it. *)
  | Span_open (id, p) ->
    Buffer.add_string b
      (Fmt.str
         "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"b\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":0}"
         (json_escape p) id ts)
  | Span_hop (id, stage) ->
    instant (Fmt.str "hop %s" stage) "span" ~args:(Fmt.str "\"span\":%d" id)
  | Span_close (id, p) ->
    Buffer.add_string b
      (Fmt.str
         "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"e\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":0}"
         (json_escape p) id ts)
  | Retune (tid, q) ->
    instant ~tid (Fmt.str "retune t%d" tid) "scheduler"
      ~args:(Fmt.str "\"quantum_us\":%d" q)

let add_trace_events t b evs =
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_char b '\n';
      chrome_event t b e)
    evs

let to_chrome_json t =
  let b = Buffer.create 65536 in
  add_trace_events t b (events t);
  Buffer.add_string b "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  Buffer.add_string b (Fmt.str "\"traced_cycles\":%d" (traced_cycles t));
  Buffer.add_string b (Fmt.str ",\"attributed_cycles\":%d" (attributed_total t));
  Buffer.add_string b (Fmt.str ",\"machine_cycles\":%d" (Machine.cycles t.machine));
  Buffer.add_string b (Fmt.str ",\"events\":%d,\"dropped\":%d" t.count (dropped t));
  Buffer.add_string b ",\"quajects\":{";
  let first = ref true in
  List.iter
    (fun (q, cy) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b (Fmt.str "\"%s\":%d" (json_escape q) cy))
    (quaject_cycles t);
  Buffer.add_string b "}}}\n";
  Buffer.contents b

(* Chrome JSON of just the flight-recorder black box: small, always
   available, and what CI attaches to a failing faultsim run. *)
let blackbox_to_chrome_json t =
  let b = Buffer.create 8192 in
  add_trace_events t b (blackbox_events t);
  Buffer.add_string b "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  Buffer.add_string b
    (Fmt.str "\"blackbox_events\":%d,\"machine_cycles\":%d" t.bb_count
       (Machine.cycles t.machine));
  Buffer.add_string b "}}\n";
  Buffer.contents b
