(* Multiple-producer multiple-consumer optimistic queue.

   The paper builds MP-MC by combining the MP producer protocol with
   the MC consumer protocol.  With both ends racing, a single-bit
   valid flag is not enough: after the ring wraps, a stalled producer
   could mistake an old flag for its own generation.  We therefore
   generalize the flag to a per-slot *sequence number* — exactly the
   valid-flag idea of Figure 2 with a generation attached — and keep
   head/tail as unbounded tickets (slot = ticket mod size).

   A producer claims ticket [h] by CAS when slot [h mod size] shows
   sequence [h] (drained this generation); filling it publishes
   sequence [h + 1].  A consumer claims ticket [t] when the slot shows
   [t + 1]; draining it publishes [t + size] for the next lap.  Every
   path is lock-free: a CAS failure means another thread made
   progress. *)

type 'a t = {
  buf : 'a option array;
  seq : int Atomic.t array;
  size : int;
  head : int Atomic.t; (* producer ticket *)
  tail : int Atomic.t; (* consumer ticket *)
}

let create size =
  if size < 2 then invalid_arg "Mpmc.create: size must be >= 2";
  {
    buf = Array.make size None;
    seq = Array.init size (fun i -> Atomic.make i);
    size;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let rec try_put t v =
  let h = Atomic.get t.head in
  let slot = h mod t.size in
  let s = Atomic.get t.seq.(slot) in
  if s = h then
    if Fault.cas t.head h (h + 1) then begin
      t.buf.(slot) <- Some v;
      Atomic.set t.seq.(slot) (h + 1);
      true
    end
    else try_put t v
  else if s < h then false (* slot still holds the previous lap: full *)
  else try_put t v (* another producer advanced head; retry *)

let rec try_get t =
  let tl = Atomic.get t.tail in
  let slot = tl mod t.size in
  let s = Atomic.get t.seq.(slot) in
  if s = tl + 1 then
    if Fault.cas t.tail tl (tl + 1) then begin
      let v = t.buf.(slot) in
      t.buf.(slot) <- None;
      Atomic.set t.seq.(slot) (tl + t.size);
      v
    end
    else try_get t
  else if s <= tl then None (* not yet published: empty *)
  else try_get t

let rec put t v = if not (try_put t v) then (Domain.cpu_relax (); put t v)

let rec get t =
  match try_get t with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    get t

let is_empty t = Atomic.get t.head = Atomic.get t.tail
let length t = max 0 (Atomic.get t.head - Atomic.get t.tail)
let capacity t = t.size
