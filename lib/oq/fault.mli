(** kfault seam for the host-level optimistic queues.

    All CAS operations in [Mpsc]/[Spmc]/[Mpmc] route through {!cas}.
    Disarmed (the default) it is [Atomic.compare_and_set] plus one
    atomic load.  Armed with [arm ~seed ~every], every [every]-th call
    library-wide is vetoed — it returns [false] without attempting the
    exchange, indistinguishable from losing the race to another
    thread — so the retry loops get exercised even in single-threaded
    runs.  On a single domain the veto sequence is a pure function of
    (seed, every, call order); arm/disarm around each stress run. *)

val arm : seed:int -> every:int -> unit
(** Veto one in [every] CAS attempts, phase-shifted by [seed].
    [every] must be >= 2. *)

val disarm : unit -> unit

val armed : unit -> bool

val forced : unit -> int
(** Vetoes delivered since the last {!arm}. *)

val cas : 'a Atomic.t -> 'a -> 'a -> bool
(** [compare_and_set], possibly vetoed. *)
