(* Single-producer multiple-consumer optimistic queue.

   Mirror image of the MP-SC queue: the producer owns [head] and the
   per-slot valid flags tell it when a slot has been fully drained;
   consumers race on [tail] with compare-and-swap.  A consumer first
   *claims* a slot (CAS on tail) and only then reads it and clears the
   flag, so no two consumers ever touch the same slot and the producer
   cannot overwrite a slot that is still being read. *)

type 'a t = {
  buf : 'a option array;
  flag : bool Atomic.t array;
  size : int;
  head : int Atomic.t; (* written only by the producer *)
  tail : int Atomic.t; (* claimed by consumers (CAS) *)
}

let create size =
  if size < 2 then invalid_arg "Spmc.create: size must be >= 2";
  {
    buf = Array.make size None;
    flag = Array.init size (fun _ -> Atomic.make false);
    size;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let next t x = if x = t.size - 1 then 0 else x + 1

let try_put t v =
  let h = Atomic.get t.head in
  (* The slot is reusable only when its flag has been cleared by the
     consumer that drained it. *)
  if Atomic.get t.flag.(h) || next t h = Atomic.get t.tail then false
  else begin
    t.buf.(h) <- Some v;
    Atomic.set t.flag.(h) true;
    Atomic.set t.head (next t h);
    true
  end

let rec try_get t =
  let tl = Atomic.get t.tail in
  if not (Atomic.get t.flag.(tl)) then None (* empty or not yet published *)
  else if Fault.cas t.tail tl (next t tl) then begin
    (* Slot claimed: we are its only reader. *)
    let v = t.buf.(tl) in
    t.buf.(tl) <- None;
    Atomic.set t.flag.(tl) false;
    v
  end
  else try_get t (* another consumer won the claim; retry *)

let rec put t v = if not (try_put t v) then (Domain.cpu_relax (); put t v)

let rec get t =
  match try_get t with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    get t

let is_empty t = not (Atomic.get t.flag.(Atomic.get t.tail))

let length t =
  let h = Atomic.get t.head and tl = Atomic.get t.tail in
  if h >= tl then h - tl else h - tl + t.size

let capacity t = t.size - 1
