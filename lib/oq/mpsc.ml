(* Multiple-producer single-consumer optimistic queue with atomic
   multi-item insert (paper Figure 2).

   Producers "stake a claim" to buffer space by atomically advancing
   [head] with compare-and-swap, then fill their slots concurrently.
   Because [head] no longer proves that data is present, every slot
   carries a valid flag: the producer sets it when the slot is filled,
   the (single) consumer clears it as the item is taken out.  The
   consumer trusts only the flags.

   The paper reports a normal Q_put path of 11 instructions on the
   68020 and 20 with one CAS retry; the VM-level twin of this queue
   ([Synthesis.Kqueue]) reproduces those counts.  This host-level
   version trades a few instructions for OCaml safety but keeps the
   algorithm identical. *)

type 'a t = {
  buf : 'a option array;
  flag : bool Atomic.t array;
  size : int;
  head : int Atomic.t; (* claimed by producers (CAS) *)
  tail : int; (* dummy for layout symmetry; consumer index below *)
  tail_c : int Atomic.t; (* written only by the consumer *)
}

let create size =
  if size < 2 then invalid_arg "Mpsc.create: size must be >= 2";
  {
    buf = Array.make size None;
    flag = Array.init size (fun _ -> Atomic.make false);
    size;
    head = Atomic.make 0;
    tail = 0;
    tail_c = Atomic.make 0;
  }

let add_wrap t x n =
  let x = x + n in
  if x >= t.size then x - t.size else x

(* SpaceLeft from Figure 2: free slots between head [h] and the
   consumer's tail, leaving one slot as the full/empty sentinel. *)
let space_left t h =
  let tl = Atomic.get t.tail_c in
  if h >= tl then tl - h + t.size - 1 else tl - h - 1

(* Atomic insert of [n] items from [items] (Figure 2's Q_put).  Either
   all items are inserted contiguously or none are. *)
let try_put_many t items n =
  if n <= 0 || n > t.size - 1 then invalid_arg "Mpsc.try_put_many";
  let rec claim () =
    let h = Atomic.get t.head in
    if space_left t h < n then None
    else
      let hi = add_wrap t h n in
      if Fault.cas t.head h hi then Some h else claim ()
  in
  match claim () with
  | None -> false
  | Some h ->
    for i = 0 to n - 1 do
      let slot = add_wrap t h i in
      t.buf.(slot) <- Some (items i);
      Atomic.set t.flag.(slot) true
    done;
    true

let try_put t v = try_put_many t (fun _ -> v) 1

(* Single consumer: no synchronization beyond the per-slot flags. *)
let try_get t =
  let tl = Atomic.get t.tail_c in
  if not (Atomic.get t.flag.(tl)) then None
  else begin
    let v = t.buf.(tl) in
    t.buf.(tl) <- None;
    Atomic.set t.flag.(tl) false;
    Atomic.set t.tail_c (add_wrap t tl 1);
    v
  end

let rec put t v = if not (try_put t v) then (Domain.cpu_relax (); put t v)

let rec get t =
  match try_get t with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    get t

let is_empty t = not (Atomic.get t.flag.(Atomic.get t.tail_c))

let length t =
  let h = Atomic.get t.head and tl = Atomic.get t.tail_c in
  if h >= tl then h - tl else h - tl + t.size

let capacity t = t.size - 1
