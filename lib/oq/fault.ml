(* kfault seam for the host-level optimistic queues.

   Every CAS in this library's claim/retry loops goes through [cas]
   below.  Disarmed (the default) it is [Atomic.compare_and_set] plus
   one atomic load — the queues behave exactly as before.  Armed, every
   [every]-th call site-wide is vetoed: it returns [false] without
   attempting the exchange, which to the caller is indistinguishable
   from losing the race to another thread.  Correct optimistic code
   must re-read and retry; code that "knew" its CAS would succeed
   loses items or duplicates them, which is what the stress tests
   look for.

   Determinism: on a single domain the veto sequence is a pure
   function of (seed, every, call order).  Under real parallelism the
   global ticket makes the veto pattern an interleaving-dependent
   pseudo-random 1/every sprinkle, which is still a valid stressor —
   the invariant checks never depend on *which* CAS was vetoed. *)

let period = Atomic.make 0 (* 0 = disarmed *)
let ticket = Atomic.make 0
let forced_count = Atomic.make 0

let arm ~seed ~every =
  if every < 2 then invalid_arg "Oq.Fault.arm: every must be >= 2";
  Atomic.set ticket (((seed mod every) + every) mod every);
  Atomic.set forced_count 0;
  Atomic.set period every

let disarm () = Atomic.set period 0
let armed () = Atomic.get period <> 0
let forced () = Atomic.get forced_count

let cas (a : 'a Atomic.t) (old : 'a) (nw : 'a) =
  let every = Atomic.get period in
  if every = 0 then Atomic.compare_and_set a old nw
  else if Atomic.fetch_and_add ticket 1 mod every = 0 then begin
    Atomic.incr forced_count;
    false
  end
  else Atomic.compare_and_set a old nw
