(* The UNIX emulator running on top of the Synthesis kernel (§6.1).

   "In the simplest case, the emulator translates the UNIX kernel call
   into an equivalent Synthesis kernel call."  Each stub shuffles
   nothing (the native ABI was chosen to match) and re-traps into the
   thread's own synthesized handlers; the extra trap plus the dispatch
   is the measured 2 us emulation overhead of Table 2. *)

open Quamachine
open Synthesis
module I = Insn

type t = { e_entry : int; e_table : int }

let install vfs =
  let k = vfs.Vfs.kernel in
  let m = k.Kernel.machine in
  (* pipe(2) needs its syscall installed on the native side *)
  Kpipe.install_syscall vfs;
  let stub name body = fst (Ksynth.install k ~name:("unix/" ^ name) body) in
  let bad = stub "badcall" [ I.Move (I.Imm (-1), I.Reg I.r0); I.Rte ] in
  let table = Kalloc.alloc_zeroed k.Kernel.alloc Unix_abi.table_size in
  for i = 0 to Unix_abi.table_size - 1 do
    Machine.poke m (table + i) bad
  done;
  let set n entry = Machine.poke m (table + n) entry in
  set Unix_abi.sys_exit (stub "exit" [ I.Trap 0 ]);
  set Unix_abi.sys_read (stub "read" [ I.Trap 1; I.Rte ]);
  set Unix_abi.sys_write (stub "write" [ I.Trap 2; I.Rte ]);
  set Unix_abi.sys_open (stub "open" [ I.Trap 3; I.Rte ]);
  set Unix_abi.sys_close (stub "close" [ I.Trap 4; I.Rte ]);
  set Unix_abi.sys_lseek (stub "lseek" [ I.Trap 12; I.Rte ]);
  set Unix_abi.sys_pipe (stub "pipe" [ I.Trap 11; I.Rte ]);
  (* getpid: the kernel global holds the running tid *)
  set Unix_abi.sys_getpid
    (stub "getpid"
       [ I.Move (I.Abs Synthesis.Layout.cur_tid_cell, I.Reg I.r0); I.Rte ]);
  (* time: the microsecond clock, through the native gettime *)
  set Unix_abi.sys_time (stub "time" [ I.Trap 10; I.Rte ]);
  (* kill(tid, _): Unix signals map onto Synthesis signals *)
  set Unix_abi.sys_kill (stub "kill" [ I.Trap 6; I.Rte ]);
  let entry =
    stub "entry"
      [
        I.Cmp (I.Imm Unix_abi.table_size, I.Reg I.r0);
        I.B (I.Cc, I.To_label "bad");
        I.Move (I.Reg I.r0, I.Reg I.r4);
        I.Alu (I.Add, I.Imm table, I.r4);
        I.Jmp (I.To_mem (I.Ind I.r4));
        I.Label "bad";
        I.Move (I.Imm (-1), I.Reg I.r0);
        I.Rte;
      ]
  in
  Kernel.set_vector_all k (I.Vector.trap Unix_abi.trap) entry;
  { e_entry = entry; e_table = table }
